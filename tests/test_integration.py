"""Cross-module integration tests: theory ↔ data ↔ pipeline.

These tests tie the paper's propositions to observable behaviour on
sampled data, and run the full Fig. 3 pipeline against generators with
known ground truth.
"""

import numpy as np
import pytest

from repro.core import (
    ExplainSession,
    ExplanationType,
    XDASemantics,
    XInsightModel,
    fit_model,
    translate_variable,
)
from repro.data import Aggregate, Filter, Subspace, Table, WhyQuery
from repro.datasets import generate_syn_b, serving_queries
from repro.fd import holds
from repro.graph import dag_from_parents
from repro.independence import ChiSquaredTest


class TestLemma831:
    """Lemma 8.3.1: X --FD--> Y implies Y ̸⊥ X and Z ⫫ Y | X for any Z."""

    def make(self, n=3000, seed=0) -> Table:
        rng = np.random.default_rng(seed)
        x = rng.integers(0, 6, size=n)
        y = x // 2  # deterministic function: X --FD--> Y
        z = rng.integers(0, 3, size=n)
        w = (x + rng.integers(0, 2, size=n)) % 6  # correlated with X
        return Table.from_columns(
            {
                "X": [f"x{v}" for v in x],
                "Y": [f"y{v}" for v in y],
                "Z": [f"z{v}" for v in z],
                "W": [f"w{v}" for v in w],
            }
        )

    def test_fd_holds(self):
        assert holds(self.make(), "X", "Y")

    def test_y_dependent_on_x(self):
        test = ChiSquaredTest(self.make())
        assert not test.independent("X", "Y")

    def test_any_z_independent_of_y_given_x(self):
        t = self.make()
        test = ChiSquaredTest(t, alpha=0.01)
        # Both an unrelated Z and a correlated W: conditioning on X makes
        # them independent of the FD child (the deterministic stratum
        # degenerates — dof 0 — which the test reports as independence,
        # exactly the faithfulness-violation mechanism of Ex. 3.1).
        assert test.independent("Z", "Y", ["X"])
        assert test.independent("W", "Y", ["X"])


class TestPrincipleOfExplainability:
    """Sec. 3.2: if X ⫫ M | F then Δ(D) ≈ Δ(D_{X=x}) under AVG."""

    def make(self, n=60_000, seed=1):
        rng = np.random.default_rng(seed)
        f = rng.integers(0, 2, size=n)
        x = rng.integers(0, 3, size=n)  # X ⫫ M | F (X ⫫ everything)
        m = rng.normal(5.0, 1.0, size=n) + 2.0 * f
        table = Table.from_columns(
            {"F": [f"f{v}" for v in f], "X": [f"x{v}" for v in x], "M": m}
        )
        query = WhyQuery.create(
            Subspace.of(F="f1"), Subspace.of(F="f0"), "M", Aggregate.AVG
        )
        return table, query

    def test_enforcing_x_leaves_delta_unchanged(self):
        table, query = self.make()
        delta = query.delta(table)
        for value in ("x0", "x1", "x2"):
            enforced = Filter("X", value).mask(table)
            assert query.delta(table, enforced) == pytest.approx(
                delta, rel=0.05
            )

    def test_translator_prunes_the_separated_variable(self):
        g = dag_from_parents({"M": ["F"], "X": []})
        verdict = translate_variable(g, "X", "M", ["F"])
        assert verdict.semantics is XDASemantics.NO_EXPLAINABILITY


class TestPipelineOnSynB:
    """Full Fig. 3 run against the SYN-B ground truth (model/session API)."""

    @pytest.fixture(scope="class")
    def fitted(self):
        case = generate_syn_b(n_rows=20_000, seed=13)
        model = fit_model(case.table, measure_bins=4)
        return model, model.session(case.table), case

    def test_graph_recovers_x_y_chain(self, fitted):
        model, _, _ = fitted
        graph = model.pag
        assert graph.has_edge("X", "Y")
        assert graph.has_edge("Y", model.node_of("Z"))
        assert not graph.has_edge("X", model.node_of("Z"))

    def test_y_not_pruned_but_unoriented(self, fitted):
        # A 3-variable chain has no collider: the MEC leaves every endpoint
        # a circle, so Table 3 cannot certify Y as causal — but rule ➀ must
        # not prune it either.
        _, session, case = fitted
        report = session.explain(case.query)
        assert report.translations["Y"].is_explainable

    def test_explanation_matches_ground_truth(self, fitted):
        _, session, case = fitted
        report = session.explain(case.query)
        y_expl = next(e for e in report.explanations if e.attribute == "Y")
        assert case.f1_against_truth(y_expl.predicate) == 1.0

    def test_background_knowledge_upgrades_y_to_causal(self, fitted):
        """Sec. 5: domain knowledge resolves what observational data cannot
        — orienting Y → Z makes Y a causal explanation.  On the new surface
        the re-oriented PAG becomes a *new* immutable model serving a new
        session; the base model is untouched."""
        from repro.discovery import BackgroundKnowledge
        from repro.core import xlearner

        model, session, case = fitted
        oriented = xlearner(
            session.graph_table,
            knowledge=BackgroundKnowledge.of(
                required=[("Y", model.node_of("Z")), ("X", "Y")]
            ),
        )
        informed = model.with_pag(oriented.pag)
        report = informed.session(case.table).explain(case.query)
        assert report.translations["Y"].is_causal
        y_expl = next(e for e in report.explanations if e.attribute == "Y")
        assert y_expl.type is ExplanationType.CAUSAL
        assert case.f1_against_truth(y_expl.predicate) == 1.0
        # Immutability: the original model still serves the unoriented PAG.
        assert not model.pag.is_parent("Y", model.node_of("Z"))

    def test_contingency_is_complementary(self, fitted):
        _, session, case = fitted
        report = session.explain(case.query)
        y_expl = next(e for e in report.explanations if e.attribute == "Y")
        if y_expl.contingency is not None:
            assert not (y_expl.contingency.values & y_expl.predicate.values)


class TestOfflineOnlineSplit:
    """The Fig. 3 split as an explicit artifact/session pair, including the
    ISSUE 2 acceptance criteria (loaded-model parity, discovery-once)."""

    @pytest.fixture(scope="class")
    def case(self):
        return generate_syn_b(n_rows=20_000, seed=14)

    @pytest.fixture(scope="class")
    def model(self, case):
        return fit_model(case.table, measure_bins=4)

    def test_online_phase_is_fast(self, case, model):
        """Fig. 3's point: repeated queries reuse the offline artifacts."""
        import time

        session = model.session(case.table)
        start = time.perf_counter()
        for _ in range(5):
            session.explain(case.query)
        per_query = (time.perf_counter() - start) / 5
        assert per_query < 0.5

    def test_loaded_model_explanations_identical(self, case, model, tmp_path):
        """save → load round-trips byte-identical explanations: every query
        answered from the loaded artifact equals the in-memory fit."""
        loaded = XInsightModel.load(model.save(tmp_path / "syn_b.json"))
        assert loaded == model
        fresh = loaded.session(case.table)
        warm = model.session(case.table)
        for query in serving_queries(case, 6):
            a = warm.explain(query)
            b = fresh.explain(query)
            assert a.explanations == b.explanations
            assert a.translations == b.translations
            assert a.delta == b.delta

    def test_explain_batch_runs_discovery_exactly_once(self, case, monkeypatch):
        """≥20 queries through one session must never re-enter discovery."""
        import repro.core.model as model_mod

        calls = {"xlearner": 0}
        real = model_mod.xlearner

        def counting(*args, **kwargs):
            calls["xlearner"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(model_mod, "xlearner", counting)
        model = fit_model(case.table, measure_bins=4)
        assert calls["xlearner"] == 1
        session = model.session(case.table)
        queries = serving_queries(case, 24)
        reports = session.explain_batch(queries)
        assert len(reports) == 24
        assert all(r.explanations for r in reports[:2])
        assert calls["xlearner"] == 1, "explain_batch re-ran the offline phase"
        # And the per-context graph work was shared, not redone per query.
        info = session.cache_info()
        assert info["translation_misses"] <= 4
        assert info["translation_hits"] >= 20

    def test_session_on_fresh_rows_uses_stored_bins(self, case, model):
        """A loaded/shared model re-discretizes *new* data with the stored
        edges — the serving table never shifts the fitted bins."""
        fresh_case = generate_syn_b(n_rows=5_000, seed=99)
        session = model.session(fresh_case.table)
        bin_col = model.node_of("Z")
        fitted_categories = set(model.session(case.table).graph_table.categories(bin_col))
        served_categories = set(session.graph_table.categories(bin_col))
        assert served_categories <= fitted_categories
        report = session.explain(fresh_case.query)
        assert report.explanations
