"""Tests for the CI-test substrate (chi², G, Fisher-z, oracle, cache)."""

import numpy as np
import pytest
from conftest import make_chain_table

from repro.data import Table
from repro.graph import MixedGraph
from repro.independence import (
    CachedCITest,
    ChiSquaredTest,
    FisherZTest,
    GTest,
    OracleCITest,
)


class TestChiSquared:
    def test_dependent_pair_rejected(self, chain_table):
        assert not ChiSquaredTest(chain_table).independent("X", "M")

    def test_independent_pair_accepted(self, chain_table):
        assert ChiSquaredTest(chain_table, alpha=0.01).independent("X", "W")

    def test_conditional_independence_of_chain(self, chain_table):
        test = ChiSquaredTest(chain_table, alpha=0.01)
        assert test.independent("X", "Y", ["M"])
        assert not test.independent("X", "Y")

    def test_deterministic_column_yields_p_one(self):
        # Y is a function of X: conditioning on X makes any test of Y
        # degenerate (single row per stratum), so dof=0 and p=1.
        t = Table.from_columns(
            {
                "X": ["a", "b", "c", "a", "b", "c"],
                "Y": ["1", "2", "3", "1", "2", "3"],
                "Z": ["p", "p", "q", "q", "p", "q"],
            }
        )
        result = ChiSquaredTest(t).test("Y", "Z", ["X"])
        assert result.p_value == 1.0
        assert result.dof == 0

    def test_result_records_inputs(self):
        t = make_chain_table(200)
        r = ChiSquaredTest(t).test("X", "Y", ["M"])
        assert (r.x, r.y, r.z) == ("X", "Y", ("M",))

    def test_call_counter(self):
        t = make_chain_table(100)
        test = ChiSquaredTest(t)
        test.independent("X", "Y")
        test.independent("X", "M")
        assert test.calls == 2

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            ChiSquaredTest(make_chain_table(10), alpha=1.5)


class TestGTest:
    def test_agrees_with_chi2_on_strong_effects(self, chain_table):
        chi = ChiSquaredTest(chain_table, alpha=0.01)
        g = GTest(chain_table, alpha=0.01)
        for args in [("X", "M", ()), ("X", "W", ()), ("X", "Y", ("M",))]:
            assert chi.independent(*args) == g.independent(*args)

    def test_statistic_positive_for_dependence(self, chain_table):
        assert GTest(chain_table).test("X", "M").statistic > 0


class TestFisherZ:
    def test_linear_gaussian_chain(self):
        rng = np.random.default_rng(1)
        n = 3000
        x = rng.normal(size=n)
        m = 2 * x + rng.normal(size=n)
        y = -m + rng.normal(size=n)
        w = rng.normal(size=n)
        t = Table.from_columns({"x": x, "m": m, "y": y, "w": w})
        test = FisherZTest(t, alpha=0.01)
        assert not test.independent("x", "y")
        assert test.independent("x", "y", ["m"])
        assert test.independent("x", "w")

    def test_dimension_codes_accepted(self):
        rng = np.random.default_rng(2)
        n = 2000
        d = rng.integers(0, 2, size=n)
        m = d * 3.0 + rng.normal(size=n)
        t = Table.from_columns({"d": [str(v) for v in d], "m": m})
        assert not FisherZTest(t).independent("d", "m")

    def test_tiny_sample_returns_p_one(self):
        t = Table.from_columns({"x": [1.0, 2.0], "y": [2.0, 1.0]})
        assert FisherZTest(t).test("x", "y", ()).p_value <= 1.0
        # With z making dof <= 0:
        t3 = Table.from_columns({"x": [1.0, 2.0, 3.0], "y": [1.0, 2.0, 3.0], "z": [0.0, 1.0, 0.5]})
        assert FisherZTest(t3).test("x", "y", ["z"]).p_value == 1.0


class TestOracle:
    def test_oracle_matches_graph(self):
        g = MixedGraph(["a", "b", "c"])
        g.add_directed_edge("a", "b")
        g.add_directed_edge("b", "c")
        oracle = OracleCITest(g)
        assert not oracle.independent("a", "c")
        assert oracle.independent("a", "c", ["b"])

    def test_oracle_p_values_are_binary(self):
        g = MixedGraph(["a", "b"])
        oracle = OracleCITest(g)
        assert oracle.test("a", "b").p_value == 1.0


class TestCache:
    def test_cache_hits_do_not_reach_inner(self, small_chain_table):
        inner = ChiSquaredTest(small_chain_table)
        cached = CachedCITest(inner)
        r1 = cached.test("X", "Y", ["M"])
        r2 = cached.test("Y", "X", ["M"])  # symmetric: must hit
        assert inner.calls == 1
        assert cached.hits == 1
        assert r1.p_value == r2.p_value

    def test_clear(self, small_chain_table):
        inner = ChiSquaredTest(small_chain_table)
        cached = CachedCITest(inner)
        cached.independent("X", "Y")
        cached.clear()
        cached.independent("X", "Y")
        assert inner.calls == 2

    def test_hits_with_shared_inner(self, small_chain_table):
        # Regression: the inner test shared across wrappers (or carrying
        # prior calls) must not skew each wrapper's hit accounting.
        inner = ChiSquaredTest(small_chain_table)
        inner.test("X", "W")  # prior traffic before any wrapper exists
        first = CachedCITest(inner)
        first.test("X", "Y")
        second = CachedCITest(inner)  # shares a warm inner test
        second.test("X", "Y")  # miss for *this* wrapper's empty cache
        second.test("X", "Y")  # hit
        first.test("Y", "X")  # hit (canonical key)
        assert first.hits == 1 and first.misses == 1
        assert second.hits == 1 and second.misses == 1
