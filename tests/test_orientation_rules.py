"""Direct unit tests of the FCI orientation rules (Alg. 4 / Zhang 2008).

Each rule gets a minimal crafted graph where exactly that rule must fire,
plus a negative control where its side condition blocks it.
"""

import pytest

from repro.discovery.orientation import (
    _rule1,
    _rule2,
    _rule3,
    _rule4,
    _rule8,
    _rule9,
    apply_fci_rules,
)
from repro.discovery.skeleton import SepsetMap
from repro.graph import Endpoint, MixedGraph

A, T, C = Endpoint.ARROW, Endpoint.TAIL, Endpoint.CIRCLE


class TestRule1:
    def make(self):
        # a *-> b o-o c, a and c non-adjacent.
        g = MixedGraph(["a", "b", "c"])
        g.add_edge("a", "b", C, A)
        g.add_edge("b", "c", C, C)
        return g

    def test_fires(self):
        g = self.make()
        assert _rule1(g)
        assert g.is_parent("b", "c")

    def test_blocked_when_shielded(self):
        g = self.make()
        g.add_edge("a", "c", C, C)
        assert not _rule1(g)

    def test_blocked_without_arrowhead_at_b(self):
        g = MixedGraph(["a", "b", "c"])
        g.add_edge("a", "b", C, C)
        g.add_edge("b", "c", C, C)
        assert not _rule1(g)


class TestRule2:
    def test_fires_on_first_chain_form(self):
        # a -> b *-> c with a *-o c  =>  a *-> c.
        g = MixedGraph(["a", "b", "c"])
        g.add_directed_edge("a", "b")
        g.add_edge("b", "c", C, A)
        g.add_edge("a", "c", C, C)
        assert _rule2(g)
        assert g.mark("a", "c") is A

    def test_fires_on_second_chain_form(self):
        # a *-> b -> c with a *-o c.
        g = MixedGraph(["a", "b", "c"])
        g.add_edge("a", "b", C, A)
        g.add_directed_edge("b", "c")
        g.add_edge("a", "c", C, C)
        assert _rule2(g)
        assert g.mark("a", "c") is A

    def test_blocked_without_chain(self):
        g = MixedGraph(["a", "b", "c"])
        g.add_edge("a", "b", C, A)
        g.add_edge("b", "c", C, A)  # b is not a parent on either edge
        g.add_edge("a", "c", C, C)
        assert not _rule2(g)


class TestRule3:
    def test_fires(self):
        # a *-> b <-* c (collider), a *-o d o-* c, a,c non-adjacent, d *-o b.
        g = MixedGraph(["a", "b", "c", "d"])
        g.add_edge("a", "b", C, A)
        g.add_edge("c", "b", C, A)
        g.add_edge("a", "d", C, C)
        g.add_edge("c", "d", C, C)
        g.add_edge("d", "b", C, C)
        assert _rule3(g)
        assert g.mark("d", "b") is A

    def test_blocked_when_a_c_adjacent(self):
        g = MixedGraph(["a", "b", "c", "d"])
        g.add_edge("a", "b", C, A)
        g.add_edge("c", "b", C, A)
        g.add_edge("a", "d", C, C)
        g.add_edge("c", "d", C, C)
        g.add_edge("d", "b", C, C)
        g.add_edge("a", "c", C, C)
        assert not _rule3(g)


class TestRule4:
    def make(self, beta_in_sepset: bool):
        # Discriminating path (theta, alpha, beta, gamma):
        # theta *-> alpha <-* beta, alpha -> gamma, beta o-* gamma,
        # theta, gamma non-adjacent.
        g = MixedGraph(["theta", "alpha", "beta", "gamma"])
        g.add_edge("theta", "alpha", C, A)
        g.add_edge("beta", "alpha", C, A)
        g.add_directed_edge("alpha", "gamma")
        g.add_edge("beta", "gamma", C, C)  # circle at beta: R4 target
        sepsets = SepsetMap()
        sepsets.record(
            "theta", "gamma", {"beta"} if beta_in_sepset else set()
        )
        return g, sepsets

    def test_orients_directed_when_beta_in_sepset(self):
        g, sepsets = self.make(beta_in_sepset=True)
        assert _rule4(g, sepsets)
        assert g.is_parent("beta", "gamma")

    def test_orients_bidirected_when_beta_not_in_sepset(self):
        g, sepsets = self.make(beta_in_sepset=False)
        assert _rule4(g, sepsets)
        assert g.is_bidirected("alpha", "beta")
        assert g.is_bidirected("beta", "gamma")

    def test_blocked_without_discriminating_path(self):
        g = MixedGraph(["beta", "gamma"])
        g.add_edge("beta", "gamma", C, C)
        assert not _rule4(g, SepsetMap())


class TestRule8:
    def test_fires_on_directed_chain(self):
        # a -> b -> c and a o-> c  =>  a -> c.
        g = MixedGraph(["a", "b", "c"])
        g.add_directed_edge("a", "b")
        g.add_directed_edge("b", "c")
        g.add_edge("a", "c", C, A)  # a o-> c
        assert _rule8(g)
        assert g.is_parent("a", "c")

    def test_blocked_without_chain(self):
        g = MixedGraph(["a", "b", "c"])
        g.add_edge("a", "b", C, A)
        g.add_directed_edge("b", "c")
        g.add_edge("a", "c", C, A)
        assert not _rule8(g)


class TestRule9:
    def test_fires_on_uncovered_pd_path(self):
        # a o-> d plus uncovered p.d. path a o-o b o-o c o-o d with b,d
        # non-adjacent  =>  a -> d.
        g = MixedGraph(["a", "b", "c", "d"])
        g.add_edge("a", "d", C, A)
        g.add_edge("a", "b", C, C)
        g.add_edge("b", "c", C, C)
        g.add_edge("c", "d", C, C)
        assert _rule9(g)
        assert g.is_parent("a", "d")

    def test_blocked_when_second_node_adjacent_to_target(self):
        g = MixedGraph(["a", "b", "d"])
        g.add_edge("a", "d", C, A)
        g.add_edge("a", "b", C, C)
        g.add_edge("b", "d", C, C)  # b adjacent to d: covered
        assert not _rule9(g)


class TestRuleInteraction:
    def test_marks_never_flip_between_arrow_and_tail(self):
        """Soundness invariant: once a rule sets a non-circle mark, later
        rules may never overwrite it with the opposite mark."""
        g = MixedGraph(["a", "b", "c", "d"])
        g.add_edge("a", "b", C, A)
        g.add_edge("b", "c", C, C)
        g.add_edge("c", "d", C, C)
        g.add_edge("a", "d", C, C)
        sepsets = SepsetMap()
        snapshots = {}
        for u, v, mark_u, mark_v in g.edges():
            snapshots[(u, v)] = mark_v
            snapshots[(v, u)] = mark_u
        apply_fci_rules(g, sepsets)
        for (u, v), before in snapshots.items():
            after = g.mark(u, v)
            if before is not C:
                assert after is before

    def test_fixpoint_is_stable(self):
        g = MixedGraph(["a", "b", "c"])
        g.add_edge("a", "b", C, A)
        g.add_edge("b", "c", C, C)
        apply_fci_rules(g, SepsetMap())
        snapshot = g.copy()
        apply_fci_rules(g, SepsetMap())
        assert g == snapshot
