"""Concurrency stress for ``ExplainSession``'s coarse-lock safety model.

PR 5 made one session safe to share between threads (a per-session RLock;
see the session docstring's concurrency model).  These tests hammer a
single session from many threads and pin the contract: no exceptions, no
torn counters, reports identical to serial serving, and ``cache_info``
exactly equal to what the same workload produces serially — interleaving
must be unobservable.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import ExplainSession, fit_model
from repro.core.reporting import report_to_dict
from repro.data import Aggregate, Subspace, WhyQuery
from repro.datasets import generate_lungcancer

N_THREADS = 8
PER_THREAD = 25


@pytest.fixture(scope="module")
def table():
    return generate_lungcancer(n_rows=1200, seed=0)


@pytest.fixture(scope="module")
def model(table):
    return fit_model(table, measure_bins=3)


@pytest.fixture(scope="module")
def workload():
    s1, s2 = Subspace.of(Location="A"), Subspace.of(Location="B")
    variants = [
        WhyQuery.create(s1, s2, "LungCancer", Aggregate.AVG),
        WhyQuery.create(s1, s2, "LungCancer", Aggregate.SUM),
        WhyQuery.create(s1, s2, "LungCancer", Aggregate.COUNT),
        WhyQuery.create(s2, s1, "LungCancer", Aggregate.AVG),
    ]
    return [variants[i % len(variants)] for i in range(PER_THREAD)]


class TestConcurrentExplain:
    def test_hammered_session_matches_serial(self, model, table, workload):
        # Serial reference: same multiset of queries, one thread.
        serial = ExplainSession(model, table)
        serial_reports = [
            report_to_dict(serial.explain(q)) for q in workload
        ] * N_THREADS  # per-thread sequences are identical
        serial_info = serial.cache_info()
        # The serial session served the workload once; the hammered one
        # serves it N_THREADS times — scale the query counter only (every
        # cache counter beyond the first pass is pure hits).
        expected_queries = N_THREADS * PER_THREAD

        session = ExplainSession(model, table)
        barrier = threading.Barrier(N_THREADS)
        failures: list[BaseException] = []
        reports: dict[int, list] = {}

        def hammer(thread_id: int) -> None:
            try:
                barrier.wait(timeout=30)
                reports[thread_id] = [
                    report_to_dict(session.explain(q)) for q in workload
                ]
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(N_THREADS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not failures, failures

        # Every thread saw exactly the serial answers, in its own order.
        serial_per_thread = serial_reports[:PER_THREAD]
        for thread_id in range(N_THREADS):
            assert reports[thread_id] == serial_per_thread

        # Counters never tore: totals are exact, not approximate.
        info = session.cache_info()
        assert info["queries"] == expected_queries
        assert (
            info["translation_hits"] + info["translation_misses"]
            == expected_queries
        )
        # First-occurrence structure is interleaving-independent: the same
        # number of distinct contexts/keys miss, everything else hits.
        assert info["translation_misses"] == serial_info["translation_misses"]
        assert info["homogeneity_misses"] == serial_info["homogeneity_misses"]
        assert info["workspace_misses"] == serial_info["workspace_misses"]
        assert info["translation_entries"] == serial_info["translation_entries"]
        assert info["homogeneity_entries"] == serial_info["homogeneity_entries"]
        assert info["workspace_entries"] == serial_info["workspace_entries"]

    def test_mixed_explain_and_cache_readers(self, model, table, workload):
        session = ExplainSession(model, table)
        stop = threading.Event()
        failures: list[BaseException] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    info = session.cache_info()
                    assert info["queries"] >= 0
                    session.candidates_for(workload[0])
                    session.translations_for(workload[0])
            except BaseException as exc:  # pragma: no cover - failure path
                failures.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in readers:
            t.start()
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(session.explain, workload * 4))
        stop.set()
        for t in readers:
            t.join(timeout=30)
        assert not failures, failures
        assert session.stats.queries == len(workload) * 4

    def test_concurrent_explain_batch_calls(self, model, table, workload):
        session = ExplainSession(model, table)
        direct = [
            report_to_dict(r)
            for r in ExplainSession(model, table).explain_batch(workload)
        ]
        with ThreadPoolExecutor(max_workers=4) as pool:
            outcomes = list(
                pool.map(lambda _: session.explain_batch(workload), range(4))
            )
        for batch in outcomes:
            assert [report_to_dict(r) for r in batch] == direct
        assert session.stats.queries == 4 * len(workload)
