"""Tests for the discrete ANM direction test (suppl. 8.6)."""

import numpy as np
import pytest

from repro.data import Table
from repro.discovery import AnmDirection, anm_direction, fd_implies_forward_anm
from repro.errors import DiscoveryError


def anm_dataset(n=4000, seed=0) -> Table:
    """y = f(x) + noise with non-invertible f and skewed x: identifiable."""
    rng = np.random.default_rng(seed)
    x = rng.choice(6, size=n, p=[0.3, 0.25, 0.2, 0.1, 0.1, 0.05])
    f = np.array([0, 2, 1, 5, 3, 4])
    noise = rng.choice([-1, 0, 1], size=n, p=[0.15, 0.7, 0.15])
    y = f[x] + noise
    return Table.from_columns(
        {"x": [f"x{v}" for v in x], "y": [f"y{v}" for v in y]}
    )


class TestAnmDirection:
    def test_forward_model_accepted(self):
        result = anm_direction(anm_dataset(), "x", "y")
        assert result.p_forward > 0.05

    def test_direction_prefers_causal_order(self):
        result = anm_direction(anm_dataset(), "x", "y")
        assert result.direction is AnmDirection.X_TO_Y

    def test_reverse_call_flips_decision(self):
        result = anm_direction(anm_dataset(), "y", "x")
        assert result.direction is AnmDirection.Y_TO_X

    def test_independent_pair_is_undecided(self):
        rng = np.random.default_rng(3)
        t = Table.from_columns(
            {
                "a": [f"a{v}" for v in rng.integers(0, 3, 2000)],
                "b": [f"b{v}" for v in rng.integers(0, 3, 2000)],
            }
        )
        # Both directions fit trivially (residual ⫫ cause): no decision at
        # any margin wide enough.
        result = anm_direction(t, "a", "b", margin=1.0)
        assert result.direction is AnmDirection.UNDECIDED

    def test_measure_column_rejected(self):
        t = Table.from_columns({"d": ["a", "b"], "m": [1.0, 2.0]})
        with pytest.raises(DiscoveryError):
            anm_direction(t, "d", "m")


class TestFdAnmLink:
    def test_fd_has_zero_noise_forward_anm(self):
        # City -> State is an FD: the forward ANM has residual 0 everywhere.
        t = Table.from_columns(
            {
                "City": ["sf", "la", "nyc", "sf", "la"],
                "State": ["CA", "CA", "NY", "CA", "CA"],
            }
        )
        assert fd_implies_forward_anm(t, "City", "State")

    def test_non_fd_has_nonzero_residual(self):
        t = Table.from_columns(
            {"X": ["a", "a", "b", "b"], "Y": ["0", "1", "0", "1"]}
        )
        assert not fd_implies_forward_anm(t, "X", "Y")
