"""Failure injection and degenerate-input robustness.

Real data and real CI tests misbehave; the library must degrade gracefully
rather than crash or return malformed structures.
"""

import numpy as np
import pytest

from repro.core import XInsight, explain_attribute, xlearner
from repro.data import Aggregate, AttributeProfile, Subspace, Table, WhyQuery
from repro.discovery import fci, learn_skeleton, pc
from repro.errors import ReproError
from repro.graph import dag_from_parents, is_valid_pag_edge
from repro.independence import CITest, CITestResult, OracleCITest


class UnreliableCITest(CITest):
    """Wraps an oracle, flipping each fresh decision with probability p."""

    def __init__(self, inner: CITest, flip_prob: float, seed: int = 0) -> None:
        super().__init__(inner.alpha)
        self.inner = inner
        self.flip_prob = flip_prob
        self._rng = np.random.default_rng(seed)
        self._memo: dict[tuple, CITestResult] = {}

    def test(self, x, y, z=()):
        self.calls += 1
        key = self.canonical_key(x, y, z)
        if key not in self._memo:
            result = self.inner.test(x, y, z)
            if self._rng.random() < self.flip_prob:
                result = CITestResult(
                    x, y, tuple(z), 0.0, 1.0 - result.p_value, 0
                )
            self._memo[key] = result
        return self._memo[key]


def random_dag(seed: int, n: int = 6):
    rng = np.random.default_rng(seed)
    names = [f"v{i}" for i in range(n)]
    return dag_from_parents(
        {
            names[j]: [names[i] for i in range(j) if rng.random() < 0.4]
            for j in range(n)
        }
    )


class TestNoisyCITests:
    @pytest.mark.parametrize("flip_prob", [0.05, 0.15, 0.3])
    def test_fci_never_crashes_under_noise(self, flip_prob):
        dag = random_dag(1)
        noisy = UnreliableCITest(OracleCITest(dag), flip_prob, seed=2)
        result = fci(tuple(dag.nodes), noisy)
        # Output is a structurally valid mixed graph with PAG marks.
        for u, v, mark_u, mark_v in result.pag.edges():
            assert is_valid_pag_edge(mark_u, mark_v)

    @pytest.mark.parametrize("flip_prob", [0.1, 0.3])
    def test_pc_never_crashes_under_noise(self, flip_prob):
        dag = random_dag(3)
        noisy = UnreliableCITest(OracleCITest(dag), flip_prob, seed=4)
        result = pc(tuple(dag.nodes), noisy)
        assert result.cpdag.n_nodes == dag.n_nodes

    def test_accuracy_degrades_monotonically_on_average(self):
        """More noise, worse skeletons (averaged over seeds)."""
        from repro.graph import adjacency_scores

        def mean_f1(flip_prob: float) -> float:
            scores = []
            for seed in range(8):
                dag = random_dag(seed)
                noisy = UnreliableCITest(OracleCITest(dag), flip_prob, seed=seed + 100)
                skel = learn_skeleton(tuple(dag.nodes), noisy)
                scores.append(adjacency_scores(skel.graph, dag).f1)
            return float(np.mean(scores))

        assert mean_f1(0.0) >= mean_f1(0.25) - 0.02
        assert mean_f1(0.0) == 1.0


class TestDegenerateData:
    def test_constant_dimension_is_harmless(self):
        t = Table.from_columns(
            {
                "const": ["k"] * 40,
                "x": [str(i % 2) for i in range(40)],
                "m": [float(i % 3) for i in range(40)],
            }
        )
        result = xlearner(t)
        assert result.pag.n_nodes >= 2

    def test_two_row_table(self):
        t = Table.from_columns({"a": ["x", "y"], "b": ["p", "q"]})
        result = xlearner(t)
        assert result.pag.n_nodes >= 1

    def test_profile_with_extreme_values(self):
        t = Table.from_columns(
            {
                "f": ["a", "a", "b", "b"],
                "y": ["u", "v", "u", "v"],
                "m": [1e12, -1e12, 1e-12, 0.0],
            }
        )
        q = WhyQuery.create(Subspace.of(f="a"), Subspace.of(f="b"), "m").oriented(t)
        profile = AttributeProfile.build(t, q, "y")
        assert np.isfinite(profile.per_filter_delta()).all()

    def test_explain_attribute_single_filter(self):
        # One filter: the only candidate predicate is the whole attribute.
        rng = np.random.default_rng(0)
        n = 400
        f = rng.integers(0, 2, n)
        z = rng.normal(0, 1, n) + 2.0 * f
        t = Table.from_columns(
            {"f": [f"f{v}" for v in f], "y": ["only"] * n, "m": z}
        )
        q = WhyQuery.create(Subspace.of(f="f1"), Subspace.of(f="f0"), "m")
        found = explain_attribute(t, q, "y")
        # Removing the single filter removes all rows: Δ becomes 0 ≤ ε, so
        # it is a (trivial) counterfactual cause.
        assert found is not None
        assert found.responsibility == 1.0

    def test_pipeline_on_tiny_sample(self):
        t = Table.from_columns(
            {
                "loc": ["A", "B"] * 10,
                "x": ["u", "v"] * 10,
                "m": [float(i % 4) for i in range(20)],
            }
        )
        engine = XInsight(t, measure_bins=2).fit()
        q = WhyQuery.create(Subspace.of(loc="A"), Subspace.of(loc="B"), "m")
        report = engine.explain(q.oriented(engine.graph_table))
        assert isinstance(report.explanations, list)


class TestErrorHierarchy:
    def test_all_library_errors_share_a_base(self):
        from repro import errors

        for name in (
            "SchemaError",
            "QueryError",
            "GraphError",
            "DiscoveryError",
            "ExplanationError",
            "FDError",
        ):
            assert issubclass(getattr(errors, name), ReproError)
