"""Failure injection and degenerate-input robustness.

Real data and real CI tests misbehave; the library must degrade gracefully
rather than crash or return malformed structures.

The second half of this module pins the serving stack's fault tolerance:
process-pool self-healing, request deadlines, artifact quarantine, the
client's provably-safe retries, and the deterministic fault-injection
switchboard (:mod:`repro.serve.faults`) that drives the chaos smoke.
"""

import asyncio
import inspect
import json
import os
import random
import socket
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import XInsight, explain_attribute, fit_model, xlearner
from repro.data import (
    Aggregate,
    AttributeProfile,
    Subspace,
    Table,
    WhyQuery,
    write_csv,
)
from repro.datasets import generate_lungcancer
from repro.discovery import fci, learn_skeleton, pc
from repro.errors import (
    ArtifactQuarantinedError,
    DeadlineExceededError,
    ModelError,
    ProtocolError,
    ReproError,
    ServeError,
    ServiceOverloadedError,
)
from repro.graph import dag_from_parents, is_valid_pag_edge
from repro.independence import CITest, CITestResult, OracleCITest
from repro.parallel import ProcessExecutor, ShardTask
from repro.serve import (
    ExplanationService,
    FaultPlan,
    ModelRegistry,
    RetryPolicy,
    ServeClient,
    ServeResponseError,
    metric_value,
    parse_prometheus_text,
    render_metrics,
)
from repro.serve import faults


class UnreliableCITest(CITest):
    """Wraps an oracle, flipping each fresh decision with probability p."""

    def __init__(self, inner: CITest, flip_prob: float, seed: int = 0) -> None:
        super().__init__(inner.alpha)
        self.inner = inner
        self.flip_prob = flip_prob
        self._rng = np.random.default_rng(seed)
        self._memo: dict[tuple, CITestResult] = {}

    def test(self, x, y, z=()):
        self.calls += 1
        key = self.canonical_key(x, y, z)
        if key not in self._memo:
            result = self.inner.test(x, y, z)
            if self._rng.random() < self.flip_prob:
                result = CITestResult(
                    x, y, tuple(z), 0.0, 1.0 - result.p_value, 0
                )
            self._memo[key] = result
        return self._memo[key]


def random_dag(seed: int, n: int = 6):
    rng = np.random.default_rng(seed)
    names = [f"v{i}" for i in range(n)]
    return dag_from_parents(
        {
            names[j]: [names[i] for i in range(j) if rng.random() < 0.4]
            for j in range(n)
        }
    )


class TestNoisyCITests:
    @pytest.mark.parametrize("flip_prob", [0.05, 0.15, 0.3])
    def test_fci_never_crashes_under_noise(self, flip_prob):
        dag = random_dag(1)
        noisy = UnreliableCITest(OracleCITest(dag), flip_prob, seed=2)
        result = fci(tuple(dag.nodes), noisy)
        # Output is a structurally valid mixed graph with PAG marks.
        for u, v, mark_u, mark_v in result.pag.edges():
            assert is_valid_pag_edge(mark_u, mark_v)

    @pytest.mark.parametrize("flip_prob", [0.1, 0.3])
    def test_pc_never_crashes_under_noise(self, flip_prob):
        dag = random_dag(3)
        noisy = UnreliableCITest(OracleCITest(dag), flip_prob, seed=4)
        result = pc(tuple(dag.nodes), noisy)
        assert result.cpdag.n_nodes == dag.n_nodes

    def test_accuracy_degrades_monotonically_on_average(self):
        """More noise, worse skeletons (averaged over seeds)."""
        from repro.graph import adjacency_scores

        def mean_f1(flip_prob: float) -> float:
            scores = []
            for seed in range(8):
                dag = random_dag(seed)
                noisy = UnreliableCITest(OracleCITest(dag), flip_prob, seed=seed + 100)
                skel = learn_skeleton(tuple(dag.nodes), noisy)
                scores.append(adjacency_scores(skel.graph, dag).f1)
            return float(np.mean(scores))

        assert mean_f1(0.0) >= mean_f1(0.25) - 0.02
        assert mean_f1(0.0) == 1.0


class TestDegenerateData:
    def test_constant_dimension_is_harmless(self):
        t = Table.from_columns(
            {
                "const": ["k"] * 40,
                "x": [str(i % 2) for i in range(40)],
                "m": [float(i % 3) for i in range(40)],
            }
        )
        result = xlearner(t)
        assert result.pag.n_nodes >= 2

    def test_two_row_table(self):
        t = Table.from_columns({"a": ["x", "y"], "b": ["p", "q"]})
        result = xlearner(t)
        assert result.pag.n_nodes >= 1

    def test_profile_with_extreme_values(self):
        t = Table.from_columns(
            {
                "f": ["a", "a", "b", "b"],
                "y": ["u", "v", "u", "v"],
                "m": [1e12, -1e12, 1e-12, 0.0],
            }
        )
        q = WhyQuery.create(Subspace.of(f="a"), Subspace.of(f="b"), "m").oriented(t)
        profile = AttributeProfile.build(t, q, "y")
        assert np.isfinite(profile.per_filter_delta()).all()

    def test_explain_attribute_single_filter(self):
        # One filter: the only candidate predicate is the whole attribute.
        rng = np.random.default_rng(0)
        n = 400
        f = rng.integers(0, 2, n)
        z = rng.normal(0, 1, n) + 2.0 * f
        t = Table.from_columns(
            {"f": [f"f{v}" for v in f], "y": ["only"] * n, "m": z}
        )
        q = WhyQuery.create(Subspace.of(f="f1"), Subspace.of(f="f0"), "m")
        found = explain_attribute(t, q, "y")
        # Removing the single filter removes all rows: Δ becomes 0 ≤ ε, so
        # it is a (trivial) counterfactual cause.
        assert found is not None
        assert found.responsibility == 1.0

    def test_pipeline_on_tiny_sample(self):
        t = Table.from_columns(
            {
                "loc": ["A", "B"] * 10,
                "x": ["u", "v"] * 10,
                "m": [float(i % 4) for i in range(20)],
            }
        )
        engine = XInsight(t, measure_bins=2).fit()
        q = WhyQuery.create(Subspace.of(loc="A"), Subspace.of(loc="B"), "m")
        report = engine.explain(q.oriented(engine.graph_table))
        assert isinstance(report.explanations, list)


class TestErrorHierarchy:
    def test_all_library_errors_share_a_base(self):
        from repro import errors

        for name in (
            "SchemaError",
            "QueryError",
            "GraphError",
            "DiscoveryError",
            "ExplanationError",
            "FDError",
            "DeadlineExceededError",
            "ArtifactQuarantinedError",
        ):
            assert issubclass(getattr(errors, name), ReproError)


# ======================================================================
# Serving fault tolerance
# ======================================================================


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def serve_table():
    return generate_lungcancer(n_rows=600, seed=0)


@pytest.fixture(scope="module")
def serve_model(serve_table):
    return fit_model(serve_table, measure_bins=3)


@pytest.fixture(scope="module")
def serve_queries():
    s1, s2 = Subspace.of(Location="A"), Subspace.of(Location="B")
    return [
        WhyQuery.create(s1, s2, "LungCancer", agg)
        for agg in (Aggregate.AVG, Aggregate.SUM, Aggregate.COUNT)
    ]


@pytest.fixture()
def clean_faults():
    """Guarantee no fault plan stays armed past a test."""
    faults.disarm()
    yield
    faults.disarm()


# ----------------------------------------------------------------------
# Fault-injection switchboard
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ServeError, match="kill_worker_every"):
            FaultPlan(kill_worker_every=-1)
        with pytest.raises(ServeError, match="kill_worker_prob"):
            FaultPlan(kill_worker_prob=1.5)
        with pytest.raises(ServeError, match="flush_delay_ms"):
            FaultPlan(flush_delay_ms=-0.1)

    def test_from_spec_rejects_unknown_fields(self):
        with pytest.raises(ServeError, match="unknown fault field"):
            FaultPlan.from_spec({"kill_wroker_every": 3})

    def test_armed(self):
        assert not FaultPlan().armed
        assert FaultPlan(flush_delay_ms=1.0).armed
        assert FaultPlan(kill_worker_every=2).armed

    def test_env_round_trip(self, clean_faults):
        plan = FaultPlan(seed=7, kill_worker_every=3, flush_delay_ms=40.0)
        faults.arm(plan)
        assert os.environ[faults.FAULTS_ENV] == plan.to_env()
        assert FaultPlan.from_env() == plan
        assert faults.active() is not None
        faults.disarm()
        assert faults.FAULTS_ENV not in os.environ
        assert FaultPlan.from_env() is None
        assert faults.active() is None

    def test_malformed_env_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "{nope")
        with pytest.raises(ServeError, match="not valid JSON"):
            FaultPlan.from_env()
        monkeypatch.setenv(faults.FAULTS_ENV, "[1]")
        with pytest.raises(ServeError, match="JSON object"):
            FaultPlan.from_env()

    def test_env_var_name_matches_executor_hook(self):
        """The executor's hot-path gate hard-codes the env var name (to
        avoid importing repro.serve into discovery workers); pin the two
        spellings together so neither can drift alone."""
        from repro.parallel import executor as executor_mod

        assert faults.FAULTS_ENV == "REPRO_FAULTS"
        source = inspect.getsource(executor_mod._process_run)
        assert 'os.environ.get("REPRO_FAULTS")' in source

    def test_counter_faults_are_deterministic(self):
        state = faults.FaultState(
            FaultPlan(corrupt_artifact_every=2, drop_connection_every=3)
        )
        assert [state.should_corrupt_artifact() for _ in range(4)] == [
            False, True, False, True,
        ]
        assert [state.should_drop_connection() for _ in range(6)] == [
            False, False, True, False, False, True,
        ]


# ----------------------------------------------------------------------
# ProcessExecutor self-healing
# ----------------------------------------------------------------------


class _KillOnceTask(ShardTask):
    """Dies (as a segfaulting worker would) the first time it sees the
    poison payload; a flag file makes the re-run survive."""

    def __init__(self, flag_path):
        self.flag_path = str(flag_path)

    def run(self, state, payload):
        if payload == "die" and not os.path.exists(self.flag_path):
            with open(self.flag_path, "w"):
                pass
            os._exit(faults.KILLED_WORKER_EXIT)
        return ("ok", payload)


class _KillInWorkerTask(ShardTask):
    """Always dies on the poison payload — but only inside a pool worker,
    so the in-process serial degrade path completes."""

    def __init__(self):
        self.parent_pid = os.getpid()

    def run(self, state, payload):
        if payload == "die" and os.getpid() != self.parent_pid:
            os._exit(faults.KILLED_WORKER_EXIT)
        return ("ok", payload)


class TestProcessExecutorSelfHealing:
    def test_max_restarts_validated(self):
        with pytest.raises(ReproError, match="max_restarts"):
            ProcessExecutor(2, max_restarts=-1)

    def test_worker_death_heals_and_reruns_only_lost_shards(self, tmp_path):
        task = _KillOnceTask(tmp_path / "died-once")
        payloads = ["a", "die", "b", "c"]
        with ProcessExecutor(2) as ex:
            assert ex.map(task, payloads) == [("ok", p) for p in payloads]
            assert ex.worker_restarts == 1
            assert 1 <= ex.shard_retries <= len(payloads)
            assert ex.serial_degrades == 0
            # The healed pool keeps serving.
            assert ex.map(task, ["d"]) == [("ok", "d")]

    def test_degrades_to_serial_after_max_restarts(self):
        task = _KillInWorkerTask()
        with ProcessExecutor(2, max_restarts=1) as ex:
            out = ex.map(task, ["a", "die", "b"])
            assert out == [("ok", "a"), ("ok", "die"), ("ok", "b")]
            assert ex.worker_restarts == 1
            assert ex.serial_degrades == 1

    def test_zero_restarts_means_immediate_degrade(self):
        task = _KillInWorkerTask()
        ex = ProcessExecutor(2, max_restarts=0)
        try:
            assert ex.map(task, ["die"]) == [("ok", "die")]
            assert ex.worker_restarts == 0
            assert ex.serial_degrades == 1
        finally:
            ex.close()

    def test_close_never_raises_on_broken_pool(self):
        task = _KillInWorkerTask()
        ex = ProcessExecutor(2)
        assert ex.map(task, ["a"]) == [("ok", "a")]
        # Break the pool behind the executor's back, then close it.
        future = ex._pool.submit(os._exit, 1)
        with pytest.raises(Exception):
            future.result()
        ex.close()
        ex.close()  # idempotent


# ----------------------------------------------------------------------
# Request deadlines
# ----------------------------------------------------------------------


class TestDeadlines:
    def test_constructor_validation(self, serve_model, serve_table):
        for kwargs in (
            {"default_timeout_ms": 0},
            {"max_timeout_ms": -5},
        ):
            with pytest.raises(ServeError, match="timeout_ms"):
                ExplanationService(serve_model, serve_table, **kwargs)

    def test_resolve_timeout_policy(self, serve_model, serve_table):
        service = ExplanationService(
            serve_model, serve_table,
            default_timeout_ms=100.0, max_timeout_ms=250.0,
        )
        assert service._resolve_timeout_ms(None) == 100.0
        assert service._resolve_timeout_ms(50.0) == 50.0
        assert service._resolve_timeout_ms(10_000.0) == 250.0  # capped
        with pytest.raises(ServeError, match="timeout_ms"):
            service._resolve_timeout_ms(0)

    def test_no_policy_means_no_deadline(self, serve_model, serve_table):
        service = ExplanationService(serve_model, serve_table)
        assert service._resolve_timeout_ms(None) is None

    def test_queue_expired_request_is_shed(
        self, serve_model, serve_table, serve_queries
    ):
        async def scenario():
            async with ExplanationService(
                serve_model, serve_table, max_wait_ms=60
            ) as service:
                with pytest.raises(
                    DeadlineExceededError, match="expired while queued"
                ):
                    await service.explain(serve_queries[0], timeout_ms=1)
                return service.stats

        stats = run(scenario())
        assert stats.timeouts == 1
        assert stats.shed_expired == 1
        assert stats.completed == 0
        # Shed requests still appear in the latency accounting.
        assert stats.latency_observations == 1

    def test_mid_flush_deadline_spares_other_waiters(
        self, serve_model, serve_table, serve_queries
    ):
        """One waiter's deadline firing must not cancel the shared explain
        the remaining waiters need."""
        from repro.serve.service import _Pending

        service = ExplanationService(serve_model, serve_table)

        async def scenario():
            loop = asyncio.get_running_loop()

            async def slow_work():
                await asyncio.sleep(0.05)
                return {"answer": 42}

            now = time.perf_counter()
            expiring = _Pending(
                query=serve_queries[0], method="auto",
                future=loop.create_future(), enqueued_at=now,
                deadline=now + 0.005,
            )
            patient = _Pending(
                query=serve_queries[0], method="auto",
                future=loop.create_future(), enqueued_at=now,
            )
            result = await service._await_with_deadlines(
                slow_work(), [expiring, patient]
            )
            assert result == {"answer": 42}  # the work survived
            assert expiring.expired
            with pytest.raises(DeadlineExceededError):
                expiring.future.result()
            # The patient waiter is resolved by the fan-out loop, not here.
            assert not patient.future.done()

        run(scenario())
        assert service.stats.timeouts == 1
        assert service.stats.shed_expired == 0

    def test_all_waiters_expired_abandons_the_fanout(
        self, serve_model, serve_table, serve_queries
    ):
        from repro.serve.service import _Pending

        service = ExplanationService(serve_model, serve_table)

        async def scenario():
            loop = asyncio.get_running_loop()

            async def slow_work():
                await asyncio.sleep(0.03)
                return "too late"

            now = time.perf_counter()
            waiters = [
                _Pending(
                    query=serve_queries[0], method="auto",
                    future=loop.create_future(), enqueued_at=now,
                    deadline=now + 0.002,
                )
                for _ in range(2)
            ]
            result = await service._await_with_deadlines(slow_work(), waiters)
            assert result is None  # nobody left to receive it
            for pending in waiters:
                assert pending.expired
                with pytest.raises(DeadlineExceededError):
                    pending.future.result()
            # Let the abandoned task finish; its result is swallowed.
            await asyncio.sleep(0.05)

        run(scenario())
        assert service.stats.timeouts == 2


class TestDeadlineWireMapping:
    def test_tcp_timeout_field_validation(self):
        from repro.serve.server import ExplanationServer

        validate = ExplanationServer._requested_timeout_ms
        assert validate({"op": "explain"}) is None
        assert validate({"timeout_ms": 250}) == 250.0
        for bad in (True, "soon", 0, -3, [5]):
            with pytest.raises(ProtocolError, match="timeout_ms"):
                validate({"timeout_ms": bad})

    def test_http_status_mapping(self):
        from repro.serve import http as serve_http

        assert serve_http._status_for(DeadlineExceededError("late")) == 504
        assert serve_http._status_for(ArtifactQuarantinedError("bad")) == 503
        assert serve_http._REASONS[504] == "Gateway Timeout"
        assert serve_http.RETRY_AFTER_S >= 1


# ----------------------------------------------------------------------
# Artifact quarantine
# ----------------------------------------------------------------------


class TestArtifactQuarantine:
    def test_corrupt_rollout_keeps_prior_serving_then_clears(
        self, tmp_path, serve_table, serve_model, serve_queries
    ):
        root = tmp_path / "registry"
        model_dir = root / "demo"
        model_dir.mkdir(parents=True)
        write_csv(serve_table, model_dir / "data.csv")
        serve_model.save(model_dir / "1.json")

        async def scenario():
            async with ModelRegistry(root) as registry:
                entry = await registry.entry_for("demo")
                assert entry.version == "1"
                # A corrupt higher version lands: the rollout must not
                # take the model offline.
                bad = model_dir / "2.json"
                bad.write_text("{this is not an artifact")
                survivor = await registry.entry_for("demo")
                assert survivor is entry  # prior keeps serving
                assert registry.quarantined_models() == ["demo"]
                (row,) = [
                    r for r in registry.models_payload() if r["id"] == "demo"
                ]
                assert row["quarantined"]["version"] == "2"
                assert row["quarantined"]["failures"] == 1
                assert row["quarantined"]["retry_in_seconds"] > 0
                report = await survivor.service.explain(serve_queries[0])
                assert report.query is not None
                # Replacing the artifact clears the quarantine immediately.
                serve_model.save(bad)
                healed = await registry.entry_for("demo")
                assert healed.version == "2"
                assert registry.quarantined_models() == []

        run(scenario())

    def test_no_healthy_prior_refuses_typed_without_rereading(
        self, tmp_path, serve_table, monkeypatch
    ):
        root = tmp_path / "registry"
        model_dir = root / "solo"
        model_dir.mkdir(parents=True)
        write_csv(serve_table, model_dir / "data.csv")
        (model_dir / "1.json").write_text("{corrupt")

        reads = []
        original = ModelRegistry._read_artifact

        def counting_read(source):
            reads.append(source)
            return original(source)

        monkeypatch.setattr(
            ModelRegistry, "_read_artifact", staticmethod(counting_read)
        )

        async def scenario():
            async with ModelRegistry(root) as registry:
                with pytest.raises(ArtifactQuarantinedError, match="quarantined"):
                    await registry.entry_for("solo")
                # Negative cache: the second lookup refuses from memory.
                with pytest.raises(ArtifactQuarantinedError):
                    await registry.entry_for("solo")
                assert registry.quarantined_models() == ["solo"]

        run(scenario())
        assert len(reads) == 1

    def test_backoff_doubles_and_caps(self):
        from repro.serve.registry import QUARANTINE_MAX_S

        registry = ModelRegistry(None)
        source = Path("/artifacts/2.json")
        first = registry._note_failure("m", source, "2", 1, ValueError("bad"))
        second = registry._note_failure("m", source, "2", 1, ValueError("bad"))
        assert (first.failures, second.failures) == (1, 2)
        assert second.until > first.until
        for _ in range(10):
            last = registry._note_failure("m", source, "2", 1, ValueError("bad"))
        assert last.failures == 12
        assert last.retry_in_s(time.monotonic()) <= QUARANTINE_MAX_S + 1e-3
        # A different artifact is a fresh chance, not failure #13.
        fresh = registry._note_failure(
            "m", Path("/artifacts/3.json"), "3", 1, ValueError("bad")
        )
        assert fresh.failures == 1

    def test_fault_injected_corrupt_read(
        self, clean_faults, tmp_path, serve_model
    ):
        artifact = tmp_path / "1.json"
        serve_model.save(artifact)
        faults.arm(FaultPlan(corrupt_artifact_every=1))
        with pytest.raises(ModelError, match="corrupt"):
            ModelRegistry._read_artifact(artifact)
        faults.disarm()
        loaded = ModelRegistry._read_artifact(artifact)
        assert loaded.fingerprint() == serve_model.fingerprint()


# ----------------------------------------------------------------------
# Client resilience
# ----------------------------------------------------------------------


class _ScriptedServer:
    """Line server whose per-request behaviour follows a script:
    ``ok`` answers, ``overload`` sends a typed overload envelope,
    ``silent`` never answers (the client must time out)."""

    def __init__(self, script):
        self.script = list(script)
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            with conn:
                reader = conn.makefile("rb")
                for line in reader:
                    request = json.loads(line)
                    action = self.script.pop(0) if self.script else "ok"
                    if action == "silent":
                        continue
                    if action == "overload":
                        payload = {
                            "id": request.get("id"),
                            "ok": False,
                            "error": {
                                "type": "ServiceOverloadedError",
                                "message": "queue full",
                            },
                        }
                    else:
                        payload = {
                            "id": request.get("id"), "ok": True, "pong": True,
                        }
                    try:
                        conn.sendall((json.dumps(payload) + "\n").encode())
                    except OSError:
                        break

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


@pytest.fixture()
def scripted_server():
    servers = []

    def start(script):
        server = _ScriptedServer(script)
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.close()


class TestServeClientResilience:
    def test_retry_policy_validation(self):
        with pytest.raises(ServeError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ServeError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ServeError, match="delays"):
            RetryPolicy(base_delay_s=-0.1)

    def test_backoff_is_exponential_and_capped(self):
        policy = RetryPolicy(
            attempts=5, base_delay_s=0.1, max_delay_s=0.4, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay_s(n, rng) for n in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.4]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5, seed=0)
        rng = random.Random(policy.seed)
        for n in range(20):
            delay = policy.delay_s(0, rng)
            assert 0.05 <= delay <= 0.15

    def test_connect_failure_is_retried_then_typed(self):
        # Grab a port that nothing listens on.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServeError, match="after 3 attempt"):
            ServeClient(
                "127.0.0.1", port,
                retry=RetryPolicy(attempts=3, base_delay_s=0.001, jitter=0.0),
            )

    def test_overload_envelope_is_retried(self, scripted_server):
        server = scripted_server(["overload", "ok"])
        client = ServeClient(
            "127.0.0.1", server.port,
            retry=RetryPolicy(attempts=3, base_delay_s=0.001, jitter=0.0),
        )
        try:
            assert client.ping() is True
            assert client.retries == 1
        finally:
            client.close()

    def test_overload_surfaces_without_policy(self, scripted_server):
        server = scripted_server(["overload"])
        client = ServeClient("127.0.0.1", server.port)
        try:
            with pytest.raises(ServeResponseError) as excinfo:
                client.ping()
            assert excinfo.value.type == "ServiceOverloadedError"
            assert client.retries == 0
        finally:
            client.close()

    def test_recv_timeout_marks_connection_unusable(self, scripted_server):
        server = scripted_server(["silent", "ok"])
        client = ServeClient("127.0.0.1", server.port, timeout=0.2)
        try:
            with pytest.raises(ServeError, match="stream position is unknown"):
                client.request({"op": "ping"})
            # Every later call fails fast instead of desyncing silently.
            with pytest.raises(ServeError, match="unusable"):
                client.request({"op": "ping"})
            client.reconnect()
            assert client.ping() is True
        finally:
            client.close()


# ----------------------------------------------------------------------
# Fault-tolerance metrics
# ----------------------------------------------------------------------


class TestFaultMetrics:
    def test_fault_counters_exported(
        self, serve_model, serve_table, serve_queries
    ):
        async def scenario():
            async with ExplanationService(
                serve_model, serve_table, max_wait_ms=40
            ) as service:
                with pytest.raises(DeadlineExceededError):
                    await service.explain(serve_queries[0], timeout_ms=1)
                await service.explain(serve_queries[0])
                registry = ModelRegistry.for_service(service, model_id="demo")
                return render_metrics(registry)

        samples = parse_prometheus_text(run(scenario()))
        assert metric_value(samples, "repro_serve_timeouts_total", model="demo") == 1
        assert (
            metric_value(samples, "repro_serve_shed_expired_total", model="demo")
            == 1
        )
        assert (
            metric_value(
                samples, "repro_serve_worker_restarts_total", model="demo"
            )
            == 0
        )
        assert metric_value(samples, "repro_serve_retries_total", model="demo") == 0
        assert metric_value(samples, "repro_serve_quarantined_models") == 0
        assert metric_value(samples, "repro_serve_completed_total", model="demo") == 1


# ----------------------------------------------------------------------
# The terminal-outcome property
# ----------------------------------------------------------------------


class TestFaultToleranceProperty:
    """Under any armed :class:`FaultPlan` (flush delays) and any mix of
    per-request deadlines and queue pressure, every admitted request gets
    exactly one terminal outcome — a report or a typed
    :class:`DeadlineExceededError` — and the stats counters balance."""

    @settings(max_examples=10, deadline=None)
    @given(
        flush_delay_ms=st.sampled_from([0.0, 5.0, 25.0]),
        timeouts=st.lists(
            st.sampled_from([None, 1, 40, 5000]), min_size=1, max_size=6
        ),
        queue_limit=st.sampled_from([1, 2, 64]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_exactly_one_terminal_outcome_per_admitted_request(
        self,
        serve_model,
        serve_table,
        serve_queries,
        flush_delay_ms,
        timeouts,
        queue_limit,
        seed,
    ):
        plan = FaultPlan(seed=seed, flush_delay_ms=flush_delay_ms)

        async def scenario():
            async with ExplanationService(
                serve_model, serve_table, max_wait_ms=5, queue_limit=queue_limit
            ) as service:
                futures, rejected = [], 0
                for i, timeout_ms in enumerate(timeouts):
                    query = serve_queries[i % len(serve_queries)]
                    try:
                        futures.append(
                            service.submit(query, timeout_ms=timeout_ms)
                        )
                    except ServiceOverloadedError:
                        rejected += 1
                outcomes = await asyncio.gather(
                    *futures, return_exceptions=True
                )
                return service.stats, outcomes, rejected

        try:
            faults.arm(plan)
            stats, outcomes, rejected = run(scenario())
        finally:
            faults.disarm()

        # Exactly one terminal outcome per admitted request.
        assert len(outcomes) == stats.submitted
        failures = [o for o in outcomes if isinstance(o, BaseException)]
        assert all(isinstance(o, DeadlineExceededError) for o in failures)
        # Counters balance: admitted = completed + failed + timed out,
        # rejections tracked separately, sheds are a subset of timeouts.
        assert stats.submitted == stats.completed + stats.failed + stats.timeouts
        assert stats.rejected == rejected
        assert stats.shed_expired <= stats.timeouts
        assert stats.failed == 0
        assert len(failures) == stats.timeouts
