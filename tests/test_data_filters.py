"""Unit tests for filters, predicates, subspaces and contexts (Sec. 2.1)."""

import numpy as np
import pytest

from repro.data import Context, Filter, Predicate, Subspace, Table
from repro.errors import QueryError


def lungcancer_like() -> Table:
    return Table.from_columns(
        {
            "Location": ["A", "A", "B", "B", "A", "B"],
            "Smoking": ["Yes", "No", "No", "Yes", "Yes", "No"],
            "Severity": [3.0, 1.0, 1.0, 2.0, 3.0, 1.0],
        }
    )


class TestFilter:
    def test_mask_matches_equal_rows(self):
        t = lungcancer_like()
        mask = Filter("Location", "A").mask(t)
        assert mask.tolist() == [True, True, False, False, True, False]

    def test_mask_unknown_value_is_empty(self):
        t = lungcancer_like()
        assert not Filter("Location", "Z").mask(t).any()

    def test_str(self):
        assert str(Filter("X", "v")) == "X='v'"

    def test_ordering_is_deterministic(self):
        fs = sorted([Filter("b", 1), Filter("a", 2)])
        assert fs[0].dimension == "a"


class TestPredicate:
    def test_of_builds_value_set(self):
        p = Predicate.of("Smoking", ["Yes", "No"])
        assert p.values == frozenset({"Yes", "No"})

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Predicate.of("X", [])

    def test_from_filters_same_dimension(self):
        p = Predicate.from_filters([Filter("X", 1), Filter("X", 2)])
        assert p.values == frozenset({1, 2})

    def test_from_filters_mixed_dimensions_rejected(self):
        with pytest.raises(QueryError):
            Predicate.from_filters([Filter("X", 1), Filter("Y", 2)])

    def test_mask_is_disjunction(self):
        t = lungcancer_like()
        p = Predicate.of("Smoking", ["Yes"])
        q = Predicate.of("Smoking", ["Yes", "No"])
        assert p.mask(t).sum() == 3
        assert q.mask(t).all()

    def test_union(self):
        p = Predicate.of("X", [1]).union(Predicate.of("X", [2]))
        assert p.values == frozenset({1, 2})

    def test_union_mixed_dimensions_rejected(self):
        with pytest.raises(QueryError):
            Predicate.of("X", [1]).union(Predicate.of("Y", [2]))

    def test_filters_accessor_sorted(self):
        p = Predicate.of("X", ["b", "a"])
        assert [f.value for f in p.filters] == ["a", "b"]

    def test_len(self):
        assert len(Predicate.of("X", [1, 2, 3])) == 3


class TestSubspace:
    def test_mask_is_conjunction(self):
        t = lungcancer_like()
        s = Subspace.of(Location="A", Smoking="Yes")
        assert s.mask(t).tolist() == [True, False, False, False, True, False]

    def test_empty_subspace_selects_everything(self):
        t = lungcancer_like()
        assert Subspace().mask(t).all()

    def test_repeated_dimension_rejected(self):
        with pytest.raises(QueryError):
            Subspace((Filter("X", 1), Filter("X", 2)))

    def test_sibling_detection(self):
        s1 = Subspace.of(Location="A", Smoking="Yes")
        s2 = Subspace.of(Location="B", Smoking="Yes")
        s3 = Subspace.of(Location="B", Smoking="No")
        assert s1.is_sibling_of(s2)
        assert not s1.is_sibling_of(s3)
        assert not s1.is_sibling_of(s1)

    def test_siblings_require_same_dimensions(self):
        s1 = Subspace.of(Location="A")
        s2 = Subspace.of(Smoking="Yes")
        assert not s1.is_sibling_of(s2)

    def test_foreground_and_background(self):
        s1 = Subspace.of(Location="A", Smoking="Yes")
        s2 = Subspace.of(Location="B", Smoking="Yes")
        assert s1.foreground_dimension(s2) == "Location"
        assert s1.background_dimensions(s2) == ("Smoking",)

    def test_foreground_of_non_siblings_raises(self):
        with pytest.raises(QueryError):
            Subspace.of(X=1).foreground_dimension(Subspace.of(X=1))

    def test_value_of(self):
        s = Subspace.of(Location="A")
        assert s.value_of("Location") == "A"
        with pytest.raises(QueryError):
            s.value_of("Smoking")

    def test_str_of_empty(self):
        assert str(Subspace()) == "⊤"


class TestContext:
    def test_from_siblings(self):
        s1 = Subspace.of(Location="A", Severity_bin="high")
        s2 = Subspace.of(Location="B", Severity_bin="high")
        ctx = Context.from_siblings(s1, s2)
        assert ctx.foreground == "Location"
        assert ctx.background == ("Severity_bin",)
        assert set(ctx.variables) == {"Location", "Severity_bin"}
