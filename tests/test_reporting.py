"""Tests for report serialization and markdown rendering."""

import json

import pytest

from repro.core import XInsight
from repro.core.reporting import (
    explanation_to_dict,
    report_to_dict,
    report_to_json,
    report_to_markdown,
)
from repro.data import Aggregate, Subspace, WhyQuery
from repro.datasets import generate_lungcancer


@pytest.fixture(scope="module")
def report():
    table = generate_lungcancer(n_rows=6000, seed=0)
    engine = XInsight(table, measure_bins=3).fit()
    query = WhyQuery.create(
        Subspace.of(Location="A"), Subspace.of(Location="B"),
        "LungCancer", Aggregate.AVG,
    )
    return engine.explain(query)


class TestSerialization:
    def test_explanation_dict_schema(self, report):
        d = explanation_to_dict(report.explanations[0])
        assert set(d) == {
            "type",
            "attribute",
            "predicate",
            "responsibility",
            "score",
            "causal_role",
            "contingency",
        }
        assert d["type"] in ("causal", "non-causal")
        assert isinstance(d["predicate"]["values"], list)

    def test_report_dict_query_round(self, report):
        d = report_to_dict(report)
        assert d["query"]["measure"] == "LungCancer"
        assert d["query"]["aggregate"] == "AVG"
        assert d["query"]["s1"] == {"Location": "A"}
        assert d["delta"] > 0

    def test_translations_serialized(self, report):
        d = report_to_dict(report)
        assert d["translations"]["Smoking"]["semantics"] == "causal explanation"

    def test_json_round_trips(self, report):
        parsed = json.loads(report_to_json(report))
        assert parsed["explanations"]
        assert parsed["explanations"][0]["responsibility"] <= 1.0

    def test_values_sorted_for_determinism(self, report):
        for e in report.explanations:
            d = explanation_to_dict(e)
            assert d["predicate"]["values"] == sorted(d["predicate"]["values"])


class TestMarkdown:
    def test_table_structure(self, report):
        md = report_to_markdown(report)
        lines = md.splitlines()
        assert lines[2] == "| Type | Predicate | Responsibility |"
        assert any("causal" in line for line in lines[4:])

    def test_empty_report_renders_placeholder(self, report):
        from repro.core.pipeline import XInsightReport

        empty = XInsightReport(report.query, report.delta, [], {})
        assert "(no explanation found)" in report_to_markdown(empty)
