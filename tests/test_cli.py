"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data import write_csv
from repro.datasets import generate_cityinfo, generate_lungcancer


@pytest.fixture(scope="module")
def cityinfo_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "cityinfo.csv"
    write_csv(generate_cityinfo(n_rows=400, seed=0), path)
    return str(path)


@pytest.fixture(scope="module")
def lungcancer_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "lung.csv"
    write_csv(generate_lungcancer(n_rows=3000, seed=0), path)
    return str(path)


class TestFdsCommand:
    def test_lists_fds(self, cityinfo_csv, capsys):
        assert main(["fds", cityinfo_csv]) == 0
        out = capsys.readouterr().out
        assert "City --FD--> State" in out

    def test_no_fds_message(self, lungcancer_csv, capsys):
        assert main(["fds", lungcancer_csv]) == 0
        out = capsys.readouterr().out
        assert "no functional dependencies" in out


class TestDiscoverCommand:
    def test_xlearner_prints_fig4_chain(self, cityinfo_csv, capsys):
        assert main(["discover", cityinfo_csv]) == 0
        out = capsys.readouterr().out
        assert "City --> State" in out
        assert "Country <-- State" in out

    def test_fci_algorithm_selectable(self, cityinfo_csv, capsys):
        assert main(["discover", cityinfo_csv, "--algorithm", "fci"]) == 0

    def test_pc_algorithm_selectable(self, cityinfo_csv, capsys):
        assert main(["discover", cityinfo_csv, "--algorithm", "pc"]) == 0


class TestGroupbyCommand:
    def test_prints_groups(self, lungcancer_csv, capsys):
        code = main(
            ["groupby", lungcancer_csv, "--by", "Location", "--measure", "LungCancer"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AVG(LungCancer) by Location" in out
        assert "A" in out and "B" in out


class TestExplainCommand:
    def test_end_to_end(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--s1",
                "Location=A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
                "--bins",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Smoking" in out
        assert "causal" in out

    def test_bad_assignment_is_reported(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--s1",
                "Location-A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_value_is_reported(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--s1",
                "Location=Mars",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 2

    def test_unknown_dimension_is_reported(self, lungcancer_csv):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--s1",
                "Galaxy=A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 2
