"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core import DEFAULT_ALPHA, DEFAULT_MAX_DSEP_SIZE, DEFAULT_MEASURE_BINS
from repro.data import write_csv
from repro.datasets import generate_cityinfo, generate_lungcancer


@pytest.fixture(scope="module")
def cityinfo_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "cityinfo.csv"
    write_csv(generate_cityinfo(n_rows=400, seed=0), path)
    return str(path)


@pytest.fixture(scope="module")
def lungcancer_csv(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "lung.csv"
    write_csv(generate_lungcancer(n_rows=3000, seed=0), path)
    return str(path)


class TestFdsCommand:
    def test_lists_fds(self, cityinfo_csv, capsys):
        assert main(["fds", cityinfo_csv]) == 0
        out = capsys.readouterr().out
        assert "City --FD--> State" in out

    def test_no_fds_message(self, lungcancer_csv, capsys):
        assert main(["fds", lungcancer_csv]) == 0
        out = capsys.readouterr().out
        assert "no functional dependencies" in out


class TestDiscoverCommand:
    def test_xlearner_prints_fig4_chain(self, cityinfo_csv, capsys):
        assert main(["discover", cityinfo_csv]) == 0
        out = capsys.readouterr().out
        assert "City --> State" in out
        assert "Country <-- State" in out

    def test_fci_algorithm_selectable(self, cityinfo_csv, capsys):
        assert main(["discover", cityinfo_csv, "--algorithm", "fci"]) == 0

    def test_pc_algorithm_selectable(self, cityinfo_csv, capsys):
        assert main(["discover", cityinfo_csv, "--algorithm", "pc"]) == 0


class TestGroupbyCommand:
    def test_prints_groups(self, lungcancer_csv, capsys):
        code = main(
            ["groupby", lungcancer_csv, "--by", "Location", "--measure", "LungCancer"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "AVG(LungCancer) by Location" in out
        assert "A" in out and "B" in out


class TestExplainViewCommand:
    def test_end_to_end(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain-view",
                lungcancer_csv,
                "--by",
                "Location",
                "--measure",
                "LungCancer",
                "--bins",
                "3",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "AVG(LungCancer) GROUP BY Location" in captured.out
        assert "| Type | Attribute |" in captured.out
        assert "Smoking" in captured.out
        assert "workspace cache" in captured.err
        assert "explained 3/3" in captured.err

    def test_unknown_dimension_is_reported(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain-view",
                lungcancer_csv,
                "--by",
                "Nope",
                "--measure",
                "LungCancer",
                "--bins",
                "3",
            ]
        )
        assert code == 2
        assert "unknown column 'Nope'" in capsys.readouterr().err


class TestExplainCommand:
    def test_end_to_end(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--s1",
                "Location=A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
                "--bins",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Smoking" in out
        assert "causal" in out

    def test_bad_assignment_is_reported(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--s1",
                "Location-A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_value_is_reported(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--s1",
                "Location=Mars",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 2

    def test_unknown_dimension_is_reported(self, lungcancer_csv):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--s1",
                "Galaxy=A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 2


class TestUnifiedDefaults:
    """Satellite: CLI and library defaults come from one place."""

    def test_explain_flags_match_library_defaults(self, capsys):
        parser = build_parser()
        for command in ("explain", "fit", "batch-explain"):
            argv = {
                "explain": [command, "f.csv", "--s1", "a=b", "--s2", "a=c",
                            "--measure", "m"],
                "fit": [command, "f.csv", "--out", "m.json"],
                "batch-explain": [command, "f.csv", "--queries", "q.json"],
            }[command]
            args = parser.parse_args(argv)
            assert args.bins == DEFAULT_MEASURE_BINS, command
            assert args.alpha == DEFAULT_ALPHA, command
            assert args.max_dsep_size == DEFAULT_MAX_DSEP_SIZE, command
            assert args.max_depth is None, command


@pytest.fixture(scope="module")
def lung_model(lungcancer_csv, tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-model") / "lung_model.json"
    assert main(["fit", lungcancer_csv, "--out", str(path), "--bins", "3"]) == 0
    return str(path)


class TestFitCommand:
    def test_fit_saves_artifact(self, lung_model, capsys):
        payload = json.loads(open(lung_model).read())
        assert payload["format"] == "xinsight-model"
        assert payload["fit"]["measure_bins"] == 3

    def test_explain_serves_saved_model(self, lungcancer_csv, lung_model, capsys):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--model",
                lung_model,
                "--s1",
                "Location=A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Smoking" in captured.out
        assert "fitting the offline phase" not in captured.err

    def test_explain_with_missing_model_is_reported(
        self, lungcancer_csv, tmp_path, capsys
    ):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--model",
                str(tmp_path / "absent.json"),
                "--s1",
                "Location=A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 2
        assert "no model file" in capsys.readouterr().err


class TestBatchExplainCommand:
    @pytest.fixture()
    def queries_file(self, tmp_path):
        specs = [
            {"s1": {"Location": "A"}, "s2": {"Location": "B"},
             "measure": "LungCancer", "agg": "AVG"},
            {"s1": {"Location": "B"}, "s2": {"Location": "A"},
             "measure": "LungCancer", "agg": "SUM"},
        ]
        path = tmp_path / "queries.json"
        path.write_text(json.dumps(specs))
        return str(path)

    def test_batch_serves_all_queries(
        self, lungcancer_csv, lung_model, queries_file, capsys
    ):
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", queries_file]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "query 1/2" in captured.out
        assert "query 2/2" in captured.out
        assert "answered 2/2" in captured.err

    def test_batch_without_model_fits_once(
        self, lungcancer_csv, queries_file, capsys
    ):
        code = main(["batch-explain", lungcancer_csv, "--queries", queries_file])
        assert code == 0
        assert capsys.readouterr().err.count("fitting the offline phase") == 1

    def test_malformed_query_file_is_reported(
        self, lungcancer_csv, lung_model, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text('[{"s1": {"Location": "A"}}]')
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", str(bad)]
        )
        assert code == 2
        assert "missing" in capsys.readouterr().err

    def test_non_object_subspace_is_reported(
        self, lungcancer_csv, lung_model, tmp_path, capsys
    ):
        bad = tmp_path / "bad_subspace.json"
        bad.write_text(
            '[{"s1": "Location=A", "s2": {"Location": "B"},'
            ' "measure": "LungCancer"}]'
        )
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", str(bad)]
        )
        assert code == 2
        assert "must be a" in capsys.readouterr().err

    def test_non_object_query_entry_is_reported(
        self, lungcancer_csv, lung_model, tmp_path, capsys
    ):
        bad = tmp_path / "bad_entry.json"
        bad.write_text('["s1"]')
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", str(bad)]
        )
        assert code == 2
        assert "JSON object" in capsys.readouterr().err

    def test_empty_query_file_is_reported(
        self, lungcancer_csv, lung_model, tmp_path, capsys
    ):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", str(empty)]
        )
        assert code == 2
        assert "is empty" in capsys.readouterr().err

    def test_whitespace_only_query_file_is_reported(
        self, lungcancer_csv, lung_model, tmp_path, capsys
    ):
        blank = tmp_path / "blank.json"
        blank.write_text("  \n\t\n")
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", str(blank)]
        )
        assert code == 2
        assert "is empty" in capsys.readouterr().err

    def test_invalid_json_query_file_is_reported(
        self, lungcancer_csv, lung_model, tmp_path, capsys
    ):
        bad = tmp_path / "broken.json"
        bad.write_text("{not json at all")
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", str(bad)]
        )
        assert code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_unknown_aggregate_is_reported_not_traceback(
        self, lungcancer_csv, lung_model, tmp_path, capsys
    ):
        bad = tmp_path / "bad_agg.json"
        bad.write_text(json.dumps([
            {"s1": {"Location": "A"}, "s2": {"Location": "B"},
             "measure": "LungCancer", "agg": "MEDIAN"},
        ]))
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", str(bad)]
        )
        assert code == 2
        assert "unknown aggregate" in capsys.readouterr().err

    def test_non_string_aggregate_is_reported_not_traceback(
        self, lungcancer_csv, lung_model, tmp_path, capsys
    ):
        bad = tmp_path / "numeric_agg.json"
        bad.write_text(json.dumps([
            {"s1": {"Location": "A"}, "s2": {"Location": "B"},
             "measure": "LungCancer", "agg": 5},
        ]))
        code = main(
            ["batch-explain", lungcancer_csv, "--model", lung_model,
             "--queries", str(bad)]
        )
        assert code == 2
        assert "unknown aggregate" in capsys.readouterr().err

    def test_bad_measure_fails_before_any_fit(
        self, lungcancer_csv, tmp_path, capsys
    ):
        # No --model: a bad query spec must fail during validation, not
        # after minutes of in-process discovery.
        for bad_measure in (7, "NoSuchColumn"):
            bad = tmp_path / "bad_measure.json"
            bad.write_text(json.dumps([
                {"s1": {"Location": "A"}, "s2": {"Location": "B"},
                 "measure": bad_measure},
            ]))
            code = main(
                ["batch-explain", lungcancer_csv, "--queries", str(bad)]
            )
            captured = capsys.readouterr()
            assert code == 2
            assert "measure" in captured.err
            assert "fitting the offline phase" not in captured.err

    def test_fit_flags_with_model_warn_and_are_ignored(
        self, lungcancer_csv, lung_model, capsys
    ):
        code = main(
            [
                "explain",
                lungcancer_csv,
                "--model",
                lung_model,
                "--bins",
                "2",
                "--s1",
                "Location=A",
                "--s2",
                "Location=B",
                "--measure",
                "LungCancer",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "warning: --bins ignored" in captured.err
        assert "Smoking" in captured.out


class TestIngestAndStore:
    @pytest.fixture(scope="class")
    def lung_store(self, lungcancer_csv, tmp_path_factory):
        store_dir = tmp_path_factory.mktemp("cli-store") / "lung.store"
        assert main(["ingest", lungcancer_csv, "--out", str(store_dir)]) == 0
        return str(store_dir)

    def test_ingest_reports_layout(self, lungcancer_csv, tmp_path, capsys):
        store_dir = tmp_path / "s"
        assert main(["ingest", lungcancer_csv, "--out", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "ingested 3000 rows" in out
        assert str(store_dir) in out

    def test_ingest_refuses_overwrite(self, lungcancer_csv, lung_store, capsys):
        code = main(["ingest", lungcancer_csv, "--out", lung_store])
        assert code == 2
        err = capsys.readouterr().err
        assert "already holds" in err
        assert "--force" in err  # the error names the escape hatch

    def test_ingest_force_replaces_store(self, lungcancer_csv, tmp_path, capsys):
        store_dir = tmp_path / "s"
        assert main(["ingest", lungcancer_csv, "--out", str(store_dir)]) == 0
        capsys.readouterr()
        code = main(["ingest", lungcancer_csv, "--out", str(store_dir), "--force"])
        assert code == 0
        assert "ingested 3000 rows" in capsys.readouterr().out
        # The replaced store still opens and serves.
        from repro.data.table import Table

        assert Table.from_store(str(store_dir)).n_rows == 3000

    def test_ingest_force_never_clobbers_foreign_directories(
        self, lungcancer_csv, tmp_path, capsys
    ):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "notes.txt").write_text("not a store")
        code = main(
            ["ingest", lungcancer_csv, "--out", str(target), "--force"]
        )
        assert code == 2
        assert "refusing" in capsys.readouterr().err
        assert (target / "notes.txt").read_text() == "not a store"

    def test_explain_from_store_matches_csv(self, lungcancer_csv, lung_store, capsys):
        query = [
            "--s1", "Location=A", "--s2", "Location=B",
            "--measure", "LungCancer", "--bins", "3",
        ]
        assert main(["explain", lungcancer_csv, *query]) == 0
        from_csv = capsys.readouterr().out
        assert main(["explain", "--store", lung_store, *query]) == 0
        from_store = capsys.readouterr().out
        assert from_store == from_csv
        assert main(
            ["explain", "--store", lung_store, "--chunk-rows", "500", *query]
        ) == 0
        assert capsys.readouterr().out == from_csv
        # Bare --chunk-rows opts into the default slice size.
        assert main(["explain", "--store", lung_store, "--chunk-rows", *query]) == 0
        assert capsys.readouterr().out == from_csv

    def test_fit_from_store(self, lung_store, tmp_path, capsys):
        model_path = tmp_path / "m.json"
        code = main(
            ["fit", "--store", lung_store, "--out", str(model_path), "--bins", "3"]
        )
        assert code == 0
        assert model_path.is_file()

    def test_file_and_store_is_an_error(self, lungcancer_csv, lung_store, capsys):
        code = main(
            [
                "explain", lungcancer_csv, "--store", lung_store,
                "--s1", "Location=A", "--s2", "Location=B",
                "--measure", "LungCancer",
            ]
        )
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_neither_file_nor_store_is_an_error(self, capsys):
        code = main(
            [
                "explain",
                "--s1", "Location=A", "--s2", "Location=B",
                "--measure", "LungCancer",
            ]
        )
        assert code == 2
        assert "CSV file or --store" in capsys.readouterr().err

    def test_chunk_rows_without_store_is_an_error(self, lungcancer_csv, capsys):
        code = main(
            [
                "explain", lungcancer_csv, "--chunk-rows", "100",
                "--s1", "Location=A", "--s2", "Location=B",
                "--measure", "LungCancer",
            ]
        )
        assert code == 2
        assert "--chunk-rows" in capsys.readouterr().err


class TestServeRegistryArgs:
    """serve --registry argument validation (the server boot itself is
    covered by tests/test_registry.py and the smoke probes)."""

    def test_registry_excludes_single_model_args(self, lungcancer_csv, capsys):
        code = main(
            ["serve", lungcancer_csv, "--registry", "somewhere", "--port", "0"]
        )
        assert code == 2
        assert "--registry" in capsys.readouterr().err

    def test_registry_must_exist(self, tmp_path, capsys):
        code = main(
            ["serve", "--registry", str(tmp_path / "absent"), "--port", "0"]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err
