"""Unit tests for MixedGraph, endpoints, and DAG utilities."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Endpoint,
    MixedGraph,
    dag_from_parents,
    depths,
    edge_symbol,
    is_dag,
    topological_sort,
    validate_dag,
)


def chain() -> MixedGraph:
    g = MixedGraph(["a", "b", "c"])
    g.add_directed_edge("a", "b")
    g.add_directed_edge("b", "c")
    return g


class TestEndpoints:
    def test_edge_symbols(self):
        assert edge_symbol(Endpoint.TAIL, Endpoint.ARROW) == "-->"
        assert edge_symbol(Endpoint.ARROW, Endpoint.ARROW) == "<->"
        assert edge_symbol(Endpoint.CIRCLE, Endpoint.ARROW) == "o->"
        assert edge_symbol(Endpoint.CIRCLE, Endpoint.CIRCLE) == "o-o"


class TestMixedGraphBasics:
    def test_add_and_query_edge_marks(self):
        g = chain()
        assert g.mark("a", "b") is Endpoint.ARROW
        assert g.mark("b", "a") is Endpoint.TAIL

    def test_duplicate_edge_rejected(self):
        g = chain()
        with pytest.raises(GraphError):
            g.add_edge("a", "b")

    def test_self_loop_rejected(self):
        g = MixedGraph(["a"])
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_unknown_node_rejected(self):
        g = MixedGraph(["a"])
        with pytest.raises(GraphError):
            g.add_edge("a", "zzz")

    def test_remove_edge(self):
        g = chain()
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert not g.has_edge("b", "a")

    def test_remove_missing_edge_raises(self):
        g = chain()
        with pytest.raises(GraphError):
            g.remove_edge("a", "c")

    def test_remove_node_drops_incident_edges(self):
        g = chain()
        g.remove_node("b")
        assert g.n_edges == 0
        assert not g.has_node("b")

    def test_edges_iterates_each_once(self):
        g = chain()
        assert g.n_edges == 2
        assert len(list(g.edges())) == 2

    def test_orient(self):
        g = MixedGraph(["x", "y"])
        g.add_edge("x", "y")  # o-o
        g.orient("x", "y")
        assert g.is_parent("x", "y")

    def test_parent_child_queries(self):
        g = chain()
        assert g.parents("b") == ("a",)
        assert g.children("b") == ("c",)
        assert g.is_parent("a", "b")
        assert not g.is_parent("b", "a")

    def test_bidirected(self):
        g = MixedGraph(["x", "y"])
        g.add_bidirected_edge("x", "y")
        assert g.is_bidirected("x", "y")
        assert g.parents("y") == ()

    def test_into_and_out_of(self):
        g = chain()
        assert g.is_into("a", "b")
        assert not g.is_into("b", "a")
        assert g.is_out_of("a", "b")

    def test_collider_classification(self):
        g = MixedGraph(["x", "y", "z"])
        g.add_directed_edge("x", "y")
        g.add_directed_edge("z", "y")
        assert g.is_collider("x", "y", "z")
        assert not g.is_definite_noncollider("x", "y", "z")

    def test_definite_noncollider_with_tail(self):
        g = chain()
        assert g.is_definite_noncollider("a", "b", "c")

    def test_ancestors_include_self(self):
        g = chain()
        assert g.ancestors("c") == {"a", "b", "c"}
        assert g.descendants("a") == {"a", "b", "c"}

    def test_possible_parents_with_circles(self):
        g = MixedGraph(["x", "y"])
        g.add_edge("x", "y", Endpoint.CIRCLE, Endpoint.CIRCLE)
        assert g.possible_parents("y") == ("x",)
        g.set_mark(y := "y", "x", Endpoint.ARROW)  # x <-o y: x no longer possible parent?
        # mark at x is ARROW now -> x cannot be a parent of y
        assert g.possible_parents(y) == ()

    def test_possible_ancestors_of_set(self):
        g = MixedGraph(["x", "y", "z"])
        g.add_edge("x", "y", Endpoint.CIRCLE, Endpoint.CIRCLE)
        g.add_directed_edge("y", "z")
        assert g.possible_ancestors_of_set({"z"}) == {"x", "y", "z"}

    def test_copy_and_equality(self):
        g = chain()
        h = g.copy()
        assert g == h
        h.set_mark("a", "b", Endpoint.CIRCLE)
        assert g != h

    def test_subgraph(self):
        g = chain()
        sub = g.subgraph(["a", "b"])
        assert sub.n_edges == 1 and sub.has_edge("a", "b")

    def test_same_adjacencies(self):
        g = chain()
        h = chain()
        h.set_mark("a", "b", Endpoint.CIRCLE)
        assert g.same_adjacencies(h)


class TestDagUtilities:
    def test_topological_sort_respects_edges(self):
        order = topological_sort(chain())
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detected(self):
        g = MixedGraph(["a", "b"])
        g.add_directed_edge("a", "b")
        g.add_node("c")
        g.add_directed_edge("b", "c")
        g.add_directed_edge("c", "a")
        with pytest.raises(GraphError):
            topological_sort(g)
        assert not is_dag(g)

    def test_is_dag_rejects_circles(self):
        g = MixedGraph(["a", "b"])
        g.add_edge("a", "b")  # o-o
        assert not is_dag(g)

    def test_validate_dag_passes_on_chain(self):
        validate_dag(chain())

    def test_depths(self):
        d = depths(chain())
        assert d == {"a": 0, "b": 1, "c": 2}

    def test_dag_from_parents(self):
        g = dag_from_parents({"c": ["a", "b"], "b": ["a"]})
        assert set(g.parents("c")) == {"a", "b"}
        assert g.parents("a") == ()
