"""Tests for the dataset generators (SYN-A, SYN-B, simulated real data)."""

import numpy as np
import pytest

from repro.data import Aggregate, Filter, Subspace, WhyQuery
from repro.datasets import (
    BayesNet,
    CAUSAL_BEHAVIOURS,
    generate_cityinfo,
    generate_flight,
    generate_hotel,
    generate_lungcancer,
    generate_syn_a,
    generate_syn_b,
    generate_web,
    random_dag,
    web_truth_graph,
)
from repro.errors import DiscoveryError
from repro.fd import find_functional_dependencies
from repro.graph import is_dag, is_mag


class TestRandomGraphs:
    def test_random_dag_is_acyclic(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            assert is_dag(random_dag(10, 0.3, rng))

    def test_edge_prob_extremes(self):
        rng = np.random.default_rng(1)
        empty = random_dag(6, 0.0, rng)
        full = random_dag(6, 1.0, rng)
        assert empty.n_edges == 0
        assert full.n_edges == 15

    def test_bayesnet_rows_match_cpt_support(self):
        rng = np.random.default_rng(2)
        dag = random_dag(5, 0.4, rng)
        net = BayesNet.random(dag, rng, cardinality=3)
        table = net.sample(500, rng)
        assert table.n_rows == 500
        for node in dag.nodes:
            assert table.cardinality(node) <= 3

    def test_sampling_respects_strong_dependence(self):
        # Single edge a -> b with a near-deterministic CPT: the sampled data
        # must show the dependence.
        rng = np.random.default_rng(3)
        from repro.graph import MixedGraph

        dag = MixedGraph(["a", "b"])
        dag.add_directed_edge("a", "b")
        net = BayesNet.random(dag, rng, cardinality=2)
        net.cpts["b"] = np.array([[0.95, 0.05], [0.05, 0.95]])
        table = net.sample(2000, rng)
        from repro.independence import ChiSquaredTest

        assert not ChiSquaredTest(table).independent("a", "b")


class TestSynA:
    def test_case_shape(self):
        case = generate_syn_a(n_nodes=10, seed=0, n_rows=500)
        assert case.table.n_rows == 500
        assert len(case.observed) == 9  # one latent masked at 5% (min 1)
        assert is_mag(case.truth_mag)
        assert len(case.fd_children) == 2 * len(case.injected_fds) / 2

    def test_fd_children_are_real_fds(self):
        case = generate_syn_a(n_nodes=10, seed=1, n_rows=800)
        fds = set(
            (fd.lhs, fd.rhs)
            for fd in find_functional_dependencies(case.table, max_key_fraction=1.0)
        )
        for fd in case.injected_fds:
            assert (fd.lhs, fd.rhs) in fds

    def test_truth_pag_contains_fd_edges(self):
        case = generate_syn_a(n_nodes=10, seed=2, n_rows=500)
        for fd in case.injected_fds:
            assert case.truth_pag.is_parent(fd.lhs, fd.rhs)

    def test_fd_proportion_monotone_in_children(self):
        lo = generate_syn_a(n_nodes=10, seed=3, n_rows=300, fd_children_per_leaf=1)
        hi = generate_syn_a(n_nodes=10, seed=3, n_rows=300, fd_children_per_leaf=3)
        assert hi.fd_proportion >= lo.fd_proportion

    def test_max_fd_parents_caps_injection(self):
        case = generate_syn_a(n_nodes=10, seed=4, n_rows=300, max_fd_parents=1)
        parents = {fd.lhs for fd in case.injected_fds}
        assert len(parents) <= 1

    def test_too_small_rejected(self):
        with pytest.raises(DiscoveryError):
            generate_syn_a(n_nodes=2, seed=0)


class TestSynB:
    def test_ground_truth_is_counterfactual(self):
        case = generate_syn_b(n_rows=10_000, seed=0)
        delta = case.query.delta(case.table)
        assert delta > 0
        keep = ~case.ground_truth.mask(case.table)
        residual = case.query.delta(case.table, keep)
        assert abs(residual) < 0.15 * delta

    def test_f1_metric(self):
        from repro.data import Predicate

        case = generate_syn_b(seed=1)
        assert case.f1_against_truth(case.ground_truth) == 1.0
        assert case.f1_against_truth(None) == 0.0
        partial = Predicate.of("Y", [case.abnormal_values[0]])
        assert 0 < case.f1_against_truth(partial) < 1.0
        assert case.f1_against_truth(Predicate.of("Y", ["y9"])) == 0.0

    def test_difficulty_knobs(self):
        easy = generate_syn_b(mu_abnormal=110.0, seed=2)
        hard = generate_syn_b(mu_abnormal=15.0, seed=2)
        assert easy.query.delta(easy.table) > hard.query.delta(hard.table)

    def test_cardinality_respected(self):
        case = generate_syn_b(cardinality=20, k_abnormal=3, seed=3)
        assert case.table.cardinality("Y") == 20

    def test_bad_k_rejected(self):
        with pytest.raises(DiscoveryError):
            generate_syn_b(cardinality=5, k_abnormal=5)

    def test_sum_aggregate_query(self):
        case = generate_syn_b(agg=Aggregate.SUM, seed=4)
        assert case.query.agg is Aggregate.SUM
        assert case.query.delta(case.table) > 0


class TestLungCancer:
    def test_fig1_gap_direction(self):
        table = generate_lungcancer(n_rows=6000, seed=0)
        q = WhyQuery.create(
            Subspace.of(Location="A"), Subspace.of(Location="B"), "LungCancer"
        )
        assert q.delta(table) > 0.2

    def test_smoking_raises_severity(self):
        table = generate_lungcancer(n_rows=6000, seed=0)
        q = WhyQuery.create(
            Subspace.of(Smoking="Yes"), Subspace.of(Smoking="No"), "LungCancer"
        )
        assert q.delta(table) > 0.5


class TestFlight:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_flight(n_rows=30_000, seed=0)

    def test_fig6a_may_exceeds_november(self, table):
        q = WhyQuery.create(
            Subspace.of(Month="May"), Subspace.of(Month="Nov"), "DelayMinute"
        )
        assert q.delta(table) > 1.0

    def test_fig6b_reversal_under_rain(self, table):
        q = WhyQuery.create(
            Subspace.of(Month="May"), Subspace.of(Month="Nov"), "DelayMinute"
        )
        rainy = Filter("Rain", "Yes").mask(table)
        assert q.delta(table, rainy) < 0

    def test_quarter_is_fd_of_month(self, table):
        from repro.fd import holds

        assert holds(table, "Month", "Quarter")


class TestHotel:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_hotel(n_rows=30_000, seed=0)

    def test_july_cancellation_exceeds_january(self, table):
        q = WhyQuery.create(
            Subspace.of(ArrivalMonth="Jul"),
            Subspace.of(ArrivalMonth="Jan"),
            "IsCanceled",
        )
        assert q.delta(table) > 0.03

    def test_short_lead_shrinks_difference(self, table):
        q = WhyQuery.create(
            Subspace.of(ArrivalMonth="Jul"),
            Subspace.of(ArrivalMonth="Jan"),
            "IsCanceled",
        )
        full = q.delta(table)
        short_lead = table.measure_values("LeadTime") <= 133.0
        assert q.delta(table, short_lead) < 0.6 * full


class TestWeb:
    def test_paper_shape(self):
        table = generate_web()
        assert table.n_rows == 764
        assert len(table.dimensions) == 29

    def test_truth_graph_edges_into_isblocked(self):
        g = web_truth_graph()
        assert set(g.parents("IsBlocked")) == {
            "SpamContent",
            "ConfigChanges",
            "MassMessaging",
            "AbuseReports",
        }

    def test_causal_behaviours_correlate_with_blocking(self):
        from repro.independence import ChiSquaredTest

        table = generate_web(seed=1)
        test = ChiSquaredTest(table)
        assert not test.independent("SpamContent", "IsBlocked")

    def test_noise_behaviours_independent(self):
        from repro.independence import ChiSquaredTest

        table = generate_web(seed=1)
        test = ChiSquaredTest(table, alpha=0.01)
        assert test.independent("Behaviour00", "IsBlocked")


class TestCityInfo:
    def test_fds_hold(self):
        from repro.fd import holds

        table = generate_cityinfo()
        assert holds(table, "City", "State")
        assert holds(table, "State", "Country")
        assert not holds(table, "Country", "State")
