"""Tests for the Scorpion / RSExplain / BOExplain baselines on SYN-B."""

import numpy as np
import pytest

from repro.baselines import BOExplain, RSExplain, RowLevelEvaluator, Scorpion
from repro.data import Aggregate
from repro.datasets import generate_syn_b


@pytest.fixture(scope="module")
def avg_case():
    return generate_syn_b(n_rows=8000, agg=Aggregate.AVG, seed=0)


@pytest.fixture(scope="module")
def sum_case():
    return generate_syn_b(n_rows=8000, agg=Aggregate.SUM, seed=0)


class TestRowLevelEvaluator:
    def test_bind_enumerates_present_filters(self, avg_case):
        ev = RowLevelEvaluator(avg_case.table, avg_case.query)
        ev.bind("Y")
        assert ev.n_filters == 10
        assert set(ev.values) == set(avg_case.table.categories("Y"))

    def test_delta_without_matches_query(self, avg_case):
        ev = RowLevelEvaluator(avg_case.table, avg_case.query)
        ev.bind("Y")
        selected = np.zeros(10, dtype=bool)
        selected[0] = True
        keep = ~ev.removal_mask(selected)
        assert ev.delta_without(selected) == pytest.approx(
            avg_case.query.delta(avg_case.table, keep)
        )

    def test_predicate_of_empty_is_none(self, avg_case):
        ev = RowLevelEvaluator(avg_case.table, avg_case.query)
        ev.bind("Y")
        assert ev.predicate_of(np.zeros(10, dtype=bool)) is None


class TestScorpion:
    def test_finds_signal_on_avg(self, avg_case):
        result = Scorpion().explain(avg_case.table, avg_case.query, "Y")
        assert result.predicate is not None
        # All selected filters are truly abnormal (may be incomplete).
        assert set(result.predicate.values) <= set(avg_case.abnormal_values) or (
            avg_case.f1_against_truth(result.predicate) > 0.4
        )

    def test_incomplete_on_sum(self, sum_case):
        """The paper's Table 8: Scorpion under-selects on SUM (F1 ≈ 0.5)."""
        result = Scorpion().explain(sum_case.table, sum_case.query, "Y")
        assert result.predicate is not None
        f1 = sum_case.f1_against_truth(result.predicate)
        assert 0.0 < f1 < 1.0

    def test_time_budget_respected(self, avg_case):
        result = Scorpion().explain(
            avg_case.table, avg_case.query, "Y", time_budget=0.0
        )
        assert result.timed_out

    def test_evaluation_count_tracked(self, avg_case):
        result = Scorpion().explain(avg_case.table, avg_case.query, "Y")
        assert result.evaluations >= 10


class TestRSExplain:
    def test_includes_all_true_filters(self, avg_case):
        result = RSExplain().explain(avg_case.table, avg_case.query, "Y")
        assert result.predicate is not None
        assert set(avg_case.abnormal_values) <= set(result.predicate.values)

    def test_spurious_extras_pin_f1_at_075(self, avg_case):
        """The paper's observation: RSExplain 'may frequently find extra
        spurious filters' — recall 1.0, precision 0.6, F1 = 0.75."""
        result = RSExplain().explain(avg_case.table, avg_case.query, "Y")
        f1 = avg_case.f1_against_truth(result.predicate)
        assert f1 == pytest.approx(0.75)

    def test_top_k_is_configurable(self, avg_case):
        result = RSExplain(top_k=3).explain(avg_case.table, avg_case.query, "Y")
        assert result.predicate is not None and len(result.predicate) == 3

    def test_timeout_flag(self, avg_case):
        result = RSExplain().explain(
            avg_case.table, avg_case.query, "Y", time_budget=0.0
        )
        assert result.timed_out


class TestBOExplain:
    def test_good_on_low_cardinality(self, avg_case):
        result = BOExplain(budget=60, seed=1).explain(
            avg_case.table, avg_case.query, "Y"
        )
        assert result.predicate is not None
        assert avg_case.f1_against_truth(result.predicate) >= 0.5

    def test_accuracy_decays_with_cardinality(self):
        low = generate_syn_b(n_rows=4000, cardinality=10, seed=2)
        high = generate_syn_b(n_rows=4000, cardinality=60, seed=2)
        bo = BOExplain(budget=40, seed=3)
        f1_low = low.f1_against_truth(
            bo.explain(low.table, low.query, "Y").predicate
        )
        f1_high = high.f1_against_truth(
            bo.explain(high.table, high.query, "Y").predicate
        )
        assert f1_low >= f1_high

    def test_budget_controls_evaluations(self, avg_case):
        result = BOExplain(budget=20, seed=4).explain(
            avg_case.table, avg_case.query, "Y"
        )
        # objective evaluations + 1 for delta_full
        assert result.evaluations <= 25
