"""Tests for the group-by engine and the EDA → Why Query hand-off."""

import numpy as np
import pytest

from repro.data import (
    Aggregate,
    Role,
    Table,
    group_by,
    why_query_from_top_difference,
)
from repro.errors import QueryError


def sample() -> Table:
    return Table.from_columns(
        {
            "loc": ["A", "A", "B", "B", "C"],
            "seg": ["x", "y", "x", "y", "x"],
            "m": [4.0, 2.0, 1.0, 1.0, 10.0],
        }
    )


class TestGroupBy:
    def test_avg_by_single_dimension(self):
        result = group_by(sample(), "loc", "m", Aggregate.AVG)
        assert result.value_of("A") == pytest.approx(3.0)
        assert result.value_of("B") == pytest.approx(1.0)
        assert result.value_of("C") == pytest.approx(10.0)

    def test_sum_and_count(self):
        result = group_by(sample(), "loc", "m", Aggregate.SUM)
        assert result.value_of("A") == pytest.approx(6.0)
        counts = group_by(sample(), "loc", "m", Aggregate.COUNT)
        assert counts.value_of("B") == 2

    def test_group_counts_recorded(self):
        result = group_by(sample(), "loc", "m")
        by_key = {g.key: g.count for g in result.groups}
        assert by_key == {("A",): 2, ("B",): 2, ("C",): 1}

    def test_multi_dimension_grouping(self):
        result = group_by(sample(), ["loc", "seg"], "m", Aggregate.SUM)
        assert result.value_of("A", "x") == pytest.approx(4.0)
        assert result.value_of("B", "y") == pytest.approx(1.0)

    def test_empty_groups_not_emitted(self):
        result = group_by(sample(), ["loc", "seg"], "m")
        keys = {g.key for g in result.groups}
        assert ("C", "y") not in keys

    def test_missing_group_raises(self):
        result = group_by(sample(), "loc", "m")
        with pytest.raises(QueryError):
            result.value_of("Z")

    def test_no_dimensions_rejected(self):
        with pytest.raises(QueryError):
            group_by(sample(), [], "m")

    def test_string_agg_accepted(self):
        result = group_by(sample(), "loc", "m", "sum")
        assert result.agg is Aggregate.SUM

    def test_top_differences_ordering(self):
        result = group_by(sample(), "loc", "m")
        diffs = result.top_differences(2)
        assert diffs[0][2] >= diffs[1][2]
        assert diffs[0][2] == pytest.approx(9.0)  # C vs B

    def test_top_differences_multi_dimension_sibling_pairs_only(self):
        # Multi-dim group-bys compare within facets: keys must differ in
        # exactly one dimension ((A,x) vs (A,y) yes, (A,x) vs (B,y) no).
        result = group_by(sample(), ["loc", "seg"], "m")
        diffs = result.top_differences(k=100)
        assert diffs, "multi-dim top_differences must not raise"
        for a, b, gap in diffs:
            differing = sum(1 for x, y in zip(a.key, b.key) if x != y)
            assert differing == 1
            assert gap == pytest.approx(abs(a.value - b.value))
        assert diffs[0][2] >= diffs[-1][2]

    def test_sibling_pairs_single_dimension_is_all_pairs(self):
        result = group_by(sample(), "loc", "m")
        keys = {tuple(sorted((a.key, b.key))) for a, b in result.sibling_pairs()}
        assert len(keys) == 3  # C(3, 2) bars

    def test_group_of_returns_count(self):
        result = group_by(sample(), "loc", "m")
        group = result.group_of("A")
        assert group.count == 2 and group.value == pytest.approx(3.0)


class TestGroupOrder:
    def test_integer_keys_sorted_by_category_order_not_repr(self):
        # repr-sorting ordered 10 before 2; category-code order (first
        # appearance, which here is ascending) must win.
        t = Table.from_columns(
            {
                "bucket": [2, 5, 10, 2, 5, 10, 10],
                "m": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            },
            roles={"bucket": Role.DIMENSION, "m": Role.MEASURE},
        )
        result = group_by(t, "bucket", "m")
        assert [g.key for g in result.groups] == [(2,), (5,), (10,)]

    def test_string_keys_follow_category_order(self):
        # Category order is first appearance in the data, not lexical
        # (repr-sorting put "Zebra" before "apple").
        t = Table.from_columns(
            {
                "name": ["Zebra", "apple", "Zebra", "Mid", "apple"],
                "m": [1.0, 2.0, 3.0, 4.0, 5.0],
            }
        )
        result = group_by(t, "name", "m")
        assert [g.key for g in result.groups] == [("Zebra",), ("apple",), ("Mid",)]

    def test_multi_dim_order_is_per_dimension_code_order(self):
        result = group_by(sample(), ["loc", "seg"], "m")
        keys = [g.key for g in result.groups]
        assert keys == sorted(
            keys, key=lambda k: (["A", "B", "C"].index(k[0]), ["x", "y"].index(k[1]))
        )


class TestSparsePath:
    def test_sparse_matches_dense_exactly(self):
        for dims in ("loc", ["loc", "seg"]):
            for agg in (Aggregate.AVG, Aggregate.SUM, Aggregate.COUNT):
                dense = group_by(sample(), dims, "m", agg, sparse=False)
                sparse = group_by(sample(), dims, "m", agg, sparse=True)
                assert dense == sparse  # byte-identical dataclasses

    def test_high_cardinality_cross_product_stays_sparse(self):
        # Two 10k-category dimensions: the dense cross product would be
        # 1e8 slots (~800 MB per bincount array, twice).  The auto path
        # must pick sparse and agree with a plain dict aggregation.
        n = 20_000
        rng = np.random.default_rng(7)
        a = rng.integers(0, 10_000, size=n)
        b = rng.integers(0, 10_000, size=n)
        m = rng.normal(size=n)
        t = Table.from_columns(
            {"a": a.tolist(), "b": b.tolist(), "m": m.tolist()},
            roles={"a": Role.DIMENSION, "b": Role.DIMENSION, "m": Role.MEASURE},
        )
        assert t.cardinality("a") * t.cardinality("b") > 1 << 20
        result = group_by(t, ["a", "b"], "m", Aggregate.SUM)

        expected: dict[tuple, float] = {}
        for ka, kb, vm in zip(a.tolist(), b.tolist(), m.tolist()):
            expected[(ka, kb)] = expected.get((ka, kb), 0.0) + vm
        assert len(result.groups) == len(expected)
        for group in result.groups:
            assert group.value == pytest.approx(expected[group.key])

    def test_value_of_dict_lookup_on_multi_dim(self):
        result = group_by(sample(), ["loc", "seg"], "m", Aggregate.SUM)
        assert result.value_of("C", "x") == pytest.approx(10.0)
        with pytest.raises(QueryError):
            result.value_of("C", "y")


class TestWhyQueryFromTopDifference:
    def test_largest_gap_becomes_query(self):
        query = why_query_from_top_difference(sample(), "loc", "m")
        # C (10.0) vs B (1.0) is the largest gap; s1 must be the higher side.
        assert query.s1.value_of("loc") == "C"
        assert query.s2.value_of("loc") == "B"
        assert query.delta(sample()) > 0

    def test_single_group_rejected(self):
        t = Table.from_columns({"d": ["only", "only"], "m": [1.0, 2.0]})
        with pytest.raises(QueryError):
            why_query_from_top_difference(t, "d", "m")

    def test_agreement_with_group_values(self):
        t = sample()
        query = why_query_from_top_difference(t, "loc", "m")
        result = group_by(t, "loc", "m")
        expected = result.value_of("C") - result.value_of("B")
        assert query.delta(t) == pytest.approx(expected)

    def test_multi_dimension_subspaces_fix_every_dimension(self):
        t = sample()
        query = why_query_from_top_difference(t, ["loc", "seg"], "m")
        assert set(query.s1.dimensions) == {"loc", "seg"}
        assert query.s1.is_sibling_of(query.s2)
        # The sides are the top sibling facet pair, higher bar first.
        result = group_by(t, ["loc", "seg"], "m")
        a, b, gap = result.top_differences(1)[0]
        high = a if a.value >= b.value else b
        assert query.s1.value_of("loc") == high.key[0]
        assert query.delta(t) == pytest.approx(gap)
