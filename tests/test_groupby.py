"""Tests for the group-by engine and the EDA → Why Query hand-off."""

import numpy as np
import pytest

from repro.data import Aggregate, Table, group_by, why_query_from_top_difference
from repro.errors import QueryError


def sample() -> Table:
    return Table.from_columns(
        {
            "loc": ["A", "A", "B", "B", "C"],
            "seg": ["x", "y", "x", "y", "x"],
            "m": [4.0, 2.0, 1.0, 1.0, 10.0],
        }
    )


class TestGroupBy:
    def test_avg_by_single_dimension(self):
        result = group_by(sample(), "loc", "m", Aggregate.AVG)
        assert result.value_of("A") == pytest.approx(3.0)
        assert result.value_of("B") == pytest.approx(1.0)
        assert result.value_of("C") == pytest.approx(10.0)

    def test_sum_and_count(self):
        result = group_by(sample(), "loc", "m", Aggregate.SUM)
        assert result.value_of("A") == pytest.approx(6.0)
        counts = group_by(sample(), "loc", "m", Aggregate.COUNT)
        assert counts.value_of("B") == 2

    def test_group_counts_recorded(self):
        result = group_by(sample(), "loc", "m")
        by_key = {g.key: g.count for g in result.groups}
        assert by_key == {("A",): 2, ("B",): 2, ("C",): 1}

    def test_multi_dimension_grouping(self):
        result = group_by(sample(), ["loc", "seg"], "m", Aggregate.SUM)
        assert result.value_of("A", "x") == pytest.approx(4.0)
        assert result.value_of("B", "y") == pytest.approx(1.0)

    def test_empty_groups_not_emitted(self):
        result = group_by(sample(), ["loc", "seg"], "m")
        keys = {g.key for g in result.groups}
        assert ("C", "y") not in keys

    def test_missing_group_raises(self):
        result = group_by(sample(), "loc", "m")
        with pytest.raises(QueryError):
            result.value_of("Z")

    def test_no_dimensions_rejected(self):
        with pytest.raises(QueryError):
            group_by(sample(), [], "m")

    def test_string_agg_accepted(self):
        result = group_by(sample(), "loc", "m", "sum")
        assert result.agg is Aggregate.SUM

    def test_top_differences_ordering(self):
        result = group_by(sample(), "loc", "m")
        diffs = result.top_differences(2)
        assert diffs[0][2] >= diffs[1][2]
        assert diffs[0][2] == pytest.approx(9.0)  # C vs B

    def test_top_differences_needs_single_dimension(self):
        result = group_by(sample(), ["loc", "seg"], "m")
        with pytest.raises(QueryError):
            result.top_differences()


class TestWhyQueryFromTopDifference:
    def test_largest_gap_becomes_query(self):
        query = why_query_from_top_difference(sample(), "loc", "m")
        # C (10.0) vs B (1.0) is the largest gap; s1 must be the higher side.
        assert query.s1.value_of("loc") == "C"
        assert query.s2.value_of("loc") == "B"
        assert query.delta(sample()) > 0

    def test_single_group_rejected(self):
        t = Table.from_columns({"d": ["only", "only"], "m": [1.0, 2.0]})
        with pytest.raises(QueryError):
            why_query_from_top_difference(t, "d", "m")

    def test_agreement_with_group_values(self):
        t = sample()
        query = why_query_from_top_difference(t, "loc", "m")
        result = group_by(t, "loc", "m")
        expected = result.value_of("C") - result.value_of("B")
        assert query.delta(t) == pytest.approx(expected)
