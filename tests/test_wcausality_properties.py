"""Property-based tests pinning the W-causality definitions (Defs. 3.4–3.5).

These run the exact brute-force machinery on random small datasets and
check the definitional invariants directly — independent of any search
heuristic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.xplainer import brute_force_search, exact_responsibility
from repro.data import Aggregate, AttributeProfile, Subspace, Table, WhyQuery


@st.composite
def random_profile(draw):
    seed = draw(st.integers(min_value=0, max_value=5000))
    m = draw(st.integers(min_value=2, max_value=5))
    agg = draw(st.sampled_from([Aggregate.SUM, Aggregate.AVG]))
    rng = np.random.default_rng(seed)
    n = 300
    f = rng.integers(0, 2, size=n)
    y = rng.integers(0, m, size=n)
    shift = rng.uniform(0.0, 5.0, size=m)
    z = rng.normal(4.0, 1.0, size=n) + shift[y] * (f == 1)
    table = Table.from_columns(
        {"F": [f"f{v}" for v in f], "Y": [f"y{v}" for v in y], "Z": z}
    )
    query = WhyQuery.create(
        Subspace.of(F="f1"), Subspace.of(F="f0"), "Z", agg
    ).oriented(table)
    profile = AttributeProfile.build(table, query, "Y")
    delta = profile.delta_full()
    return profile, delta


@given(random_profile())
@settings(max_examples=40, deadline=None)
def test_responsibility_in_unit_interval(case):
    """Def. 3.5: ρ ∈ {0} ∪ (0, 1]."""
    profile, delta = case
    if delta <= 0:
        return
    epsilon = 0.1 * delta
    m = profile.n_filters
    for bits in range(1, 1 << m):
        selected = np.array([(bits >> i) & 1 == 1 for i in range(m)], dtype=bool)
        rho, gamma = exact_responsibility(profile, selected, epsilon)
        assert 0.0 <= rho <= 1.0
        if rho == 1.0:
            assert gamma is not None


@given(random_profile())
@settings(max_examples=40, deadline=None)
def test_counterfactual_iff_rho_one_with_empty_gamma(case):
    """Def. 3.4: P is counterfactual iff Δ(D−D_P) ≤ ε — equivalently the
    empty contingency is valid, giving |Γ|_W = 0 and ρ = 1."""
    profile, delta = case
    if delta <= 0:
        return
    epsilon = 0.1 * delta
    m = profile.n_filters
    for bits in range(1, (1 << m) - 1):
        selected = np.array([(bits >> i) & 1 == 1 for i in range(m)], dtype=bool)
        counterfactual = profile.delta_without(selected) <= epsilon
        rho, gamma = exact_responsibility(profile, selected, epsilon)
        if counterfactual:
            assert rho == 1.0
            assert gamma is not None and gamma.size == 0


@given(random_profile())
@settings(max_examples=30, deadline=None)
def test_brute_force_optimum_is_an_actual_cause(case):
    """The returned optimum must itself satisfy Def. 3.4."""
    profile, delta = case
    if delta <= 0:
        return
    epsilon = 0.1 * delta
    sigma = 1.0 / profile.n_filters
    best = brute_force_search(profile, epsilon, sigma)
    if best is None:
        return
    selected = profile.selection_of(best.predicate)
    rho, _ = exact_responsibility(profile, selected, epsilon)
    assert rho > 0.0
    assert best.responsibility == pytest.approx(rho)


@given(random_profile())
@settings(max_examples=30, deadline=None)
def test_contingency_disjoint_from_predicate(case):
    """Def. 3.4 side condition: P ∩ Γ = ∅."""
    profile, delta = case
    if delta <= 0:
        return
    epsilon = 0.1 * delta
    best = brute_force_search(profile, epsilon, 1.0 / profile.n_filters)
    if best is None or best.contingency is None:
        return
    assert not (best.predicate.values & best.contingency.values)
