"""The explanation service layer: micro-batching, wire protocol, drain.

Pins the serving contract of :mod:`repro.serve`:

* results through the service/server are byte-identical to a direct
  ``explain_batch`` on a session (dedup and coalescing are invisible);
* admission control rejects with typed errors, never drops silently;
* graceful drain serves everything admitted before shutdown;
* every wire-level malformation gets a typed error response on the same
  connection.
"""

import asyncio
import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.core import ExplainSession, fit_model
from repro.core.reporting import report_to_dict
from repro.data import Aggregate, Subspace, WhyQuery, write_csv
from repro.datasets import generate_lungcancer
from repro.errors import (
    ProtocolError,
    ReproError,
    ServeError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.serve import (
    ExplanationServer,
    ExplanationService,
    ServeClient,
    ServeResponseError,
    decode_request,
    encode_line,
)
from repro.serve.smoke import BANNER

SPEC = {
    "s1": {"Location": "A"},
    "s2": {"Location": "B"},
    "measure": "LungCancer",
    "agg": "AVG",
}


@pytest.fixture(scope="module")
def table():
    return generate_lungcancer(n_rows=800, seed=0)


@pytest.fixture(scope="module")
def model(table):
    return fit_model(table, measure_bins=3)


@pytest.fixture(scope="module")
def query():
    return WhyQuery.create(
        Subspace.of(Location="A"),
        Subspace.of(Location="B"),
        "LungCancer",
        Aggregate.AVG,
    )


@pytest.fixture(scope="module")
def query_variants(query):
    return [
        query,
        WhyQuery.create(query.s1, query.s2, query.measure, Aggregate.SUM),
        WhyQuery.create(query.s1, query.s2, query.measure, Aggregate.COUNT),
    ]


def run(coro):
    return asyncio.run(coro)


class TestServerStats:
    def test_nearest_rank_percentiles(self):
        from repro.serve.service import ServerStats

        stats = ServerStats()
        for ms in (1.0, 2.0):
            stats.observe_latency(ms / 1e3)
        # Nearest rank: p50 of [1, 2] is the 1st value, not the 2nd.
        assert stats.latency_ms()["p50"] == 1.0
        for ms in (3.0, 4.0):
            stats.observe_latency(ms / 1e3)
        latency = stats.latency_ms()
        assert latency["p50"] == 2.0  # ceil(0.5 * 4) = rank 2
        assert latency["p99"] == 4.0  # ceil(0.99 * 4) = rank 4
        assert latency["count"] == 4


class TestProtocol:
    def test_roundtrip(self):
        payload = {"op": "ping", "id": 3}
        assert decode_request(encode_line(payload).rstrip(b"\n")) == payload

    def test_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="JSON"):
            decode_request(b"{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_request(b"[1, 2]")

    def test_rejects_unknown_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(b'{"op": "frobnicate"}')

    def test_rejects_missing_op(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            decode_request(b'{"id": 1}')


class TestServiceBatching:
    def test_explain_matches_direct_session(self, model, table, query):
        direct = ExplainSession(model, table).explain(query)

        async def scenario():
            async with ExplanationService(model, table) as service:
                return await service.explain(query)

        assert report_to_dict(run(scenario())) == report_to_dict(direct)

    def test_concurrent_burst_byte_identical_and_ordered(
        self, model, table, query_variants
    ):
        queries = [query_variants[i % len(query_variants)] for i in range(24)]
        direct = ExplainSession(model, table).explain_batch(queries)

        async def scenario():
            async with ExplanationService(
                model, table, max_batch=8, max_wait_ms=10
            ) as service:
                return await asyncio.gather(
                    *[service.explain(q) for q in queries]
                )

        reports = run(scenario())
        assert [report_to_dict(r) for r in reports] == [
            report_to_dict(r) for r in direct
        ]

    def test_duplicates_coalesce_into_one_explain(self, model, table, query):
        async def scenario():
            async with ExplanationService(
                model, table, max_batch=64, max_wait_ms=50
            ) as service:
                await asyncio.gather(*[service.explain(query) for _ in range(16)])
                return service

        service = run(scenario())
        assert service.stats.completed == 16
        assert service.stats.deduped >= 8  # most of the burst rode one explain
        # Dedup means the underlying session saw far fewer queries than the
        # service answered.
        assert service.session.stats.queries < 16

    def test_max_batch_caps_flush_size(self, model, table, query_variants):
        queries = [query_variants[i % len(query_variants)] for i in range(20)]

        async def scenario():
            async with ExplanationService(
                model, table, max_batch=4, max_wait_ms=50
            ) as service:
                await asyncio.gather(*[service.explain(q) for q in queries])
                return service

        service = run(scenario())
        assert service.stats.batches >= 5
        assert max(service.stats.batch_sizes) <= 4

    def test_admission_control_rejects_when_full(self, model, table, query):
        release = threading.Event()
        real_batch = None

        async def scenario():
            nonlocal real_batch
            service = ExplanationService(
                model, table, max_batch=1, max_wait_ms=0, queue_limit=2
            )
            real_batch = service.session.explain_batch

            def blocking_batch(queries, **kwargs):
                release.wait(timeout=30)
                return real_batch(queries, **kwargs)

            service.session.explain_batch = blocking_batch
            async with service:
                first = service.submit(query)  # flusher grabs it, then blocks
                await asyncio.sleep(0.1)
                backlog = [service.submit(query), service.submit(query)]
                with pytest.raises(ServiceOverloadedError, match="queue full"):
                    service.submit(query)
                assert service.stats.rejected == 1
                release.set()
                reports = await asyncio.gather(first, *backlog)
            return service, reports

        service, reports = run(scenario())
        assert len(reports) == 3
        assert service.stats.completed == 3

    def test_unstarted_and_stopped_reject_typed(self, model, table, query):
        service = ExplanationService(model, table)
        with pytest.raises(ServiceClosedError, match="not started"):
            service.submit(query)

        async def scenario():
            svc = ExplanationService(model, table)
            await svc.start()
            await svc.stop()
            with pytest.raises(ServiceClosedError):
                svc.submit(query)

        run(scenario())

    def test_stop_drains_admitted_backlog(self, model, table, query_variants):
        async def scenario():
            service = ExplanationService(model, table, max_batch=4, max_wait_ms=500)
            await service.start()
            futures = [
                service.submit(query_variants[i % len(query_variants)])
                for i in range(12)
            ]
            await service.stop()  # drain, not drop: every future resolves
            assert all(f.done() for f in futures)
            return service, [f.result() for f in futures]

        service, reports = run(scenario())
        assert len(reports) == 12
        assert service.stats.completed == 12

    def test_stop_is_idempotent(self, model, table):
        async def scenario():
            service = ExplanationService(model, table)
            await service.start()
            await service.stop()
            await service.stop()

        run(scenario())

    def test_poison_query_fails_alone(self, model, table, query):
        bad = WhyQuery(query.s1, query.s2, "NoSuchMeasure", Aggregate.AVG)

        async def scenario():
            async with ExplanationService(
                model, table, max_batch=8, max_wait_ms=20
            ) as service:
                results = await asyncio.gather(
                    service.explain(query),
                    service.explain(bad),
                    service.explain(query),
                    return_exceptions=True,
                )
            return service, results

        service, (good1, err, good2) = run(scenario())
        assert isinstance(err, ReproError)
        assert report_to_dict(good1) == report_to_dict(good2)
        assert service.stats.failed == 1
        assert service.stats.completed == 2

    def test_worker_fanout_is_unobservable(self, model, table, query_variants):
        # Session affinity: with workers=2 each flush shards across
        # per-worker sessions, but results stay byte-identical to serial.
        queries = [query_variants[i % len(query_variants)] for i in range(12)]
        direct = ExplainSession(model, table).explain_batch(queries)

        async def scenario():
            async with ExplanationService(
                model, table, max_batch=16, max_wait_ms=20,
                workers=2, executor_kind="thread",
            ) as service:
                return await asyncio.gather(
                    *[service.explain(q) for q in queries]
                )

        reports = run(scenario())
        assert [report_to_dict(r) for r in reports] == [
            report_to_dict(r) for r in direct
        ]

    def test_stats_snapshot_surface(self, model, table, query):
        async def scenario():
            async with ExplanationService(model, table) as service:
                await service.explain(query)
                return service.stats_snapshot()

        snap = run(scenario())
        assert {
            "submitted", "completed", "failed", "rejected", "deduped",
            "batches", "batch_size_hist", "latency_ms", "queue_depth",
            "cache", "config",
        } <= set(snap)
        assert snap["latency_ms"]["count"] == 1
        assert snap["latency_ms"]["p99"] >= snap["latency_ms"]["p50"] > 0
        assert "workspace_hits" in snap["cache"]
        assert snap["config"]["max_batch"] >= 1

    def test_invalid_knobs_are_typed_errors(self, model, table):
        for kwargs in ({"max_batch": 0}, {"max_wait_ms": -1}, {"queue_limit": 0}):
            with pytest.raises(ServeError):
                ExplanationService(model, table, **kwargs)

    def test_snapshot_carries_uptime_and_fingerprint(self, model, table, query):
        async def scenario():
            async with ExplanationService(model, table) as service:
                await service.explain(query)
                return service.stats_snapshot()

        snap = run(scenario())
        assert snap["uptime_seconds"] > 0
        assert snap["fingerprint"] == model.fingerprint()


class TestClientConnectErrors:
    def test_connect_refused_is_typed_and_names_the_address(self):
        import socket

        # Grab an ephemeral port, then close it so nothing listens there.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServeError, match=f"127.0.0.1:{port}"):
            ServeClient("127.0.0.1", port, timeout=5)


@pytest.fixture()
def running_server(model, table):
    """A live TCP server + a helper that runs client work in a thread."""

    async def scenario(client_work):
        service = ExplanationService(model, table, max_batch=16, max_wait_ms=5)
        server = ExplanationServer(service, port=0, allow_shutdown=True)
        await server.start()
        result: dict = {}

        def work():
            try:
                result["value"] = client_work(server.host, server.port)
            except BaseException as exc:  # surfaced after join
                result["error"] = exc

        thread = threading.Thread(target=work)
        thread.start()
        await server.serve_until_shutdown()
        thread.join(timeout=30)
        if "error" in result:
            raise result["error"]
        return result.get("value"), server, service

    return scenario


class TestServerWire:
    def test_ping_explain_stats_shutdown(self, running_server, model, table, query):
        direct = ExplainSession(model, table).explain(query)

        def client_work(host, port):
            with ServeClient(host, port) as client:
                assert client.ping()
                report = client.explain(SPEC)
                stats = client.stats()
                assert client.shutdown()
                return report, stats

        (report, stats), server, service = run(running_server(client_work))
        assert report == report_to_dict(direct)
        assert stats["completed"] >= 1
        assert stats["requests_total"] >= 3
        assert stats["connections_total"] == 1
        assert service.stats.completed >= 1

    def test_pipelined_burst_matches_direct_batch(
        self, running_server, model, table, query_variants
    ):
        specs = [
            dict(SPEC, agg=agg) for agg in ("AVG", "SUM", "COUNT")
        ] * 6
        queries = [
            WhyQuery.create(
                Subspace.of(Location="A"), Subspace.of(Location="B"),
                "LungCancer", spec["agg"],
            )
            for spec in specs
        ]
        direct = ExplainSession(model, table).explain_batch(queries)

        def client_work(host, port):
            with ServeClient(host, port) as client:
                reports = client.explain_many(specs)
                stats = client.stats()
                client.shutdown()
                return reports, stats

        (reports, stats), _, _ = run(running_server(client_work))
        assert reports == [report_to_dict(r) for r in direct]
        assert stats["deduped"] >= 9  # 18 requests over 3 distinct queries

    def test_wire_errors_are_typed_and_connection_survives(
        self, running_server
    ):
        def client_work(host, port):
            outcomes = []
            with ServeClient(host, port) as client:
                client._sock.sendall(b"{not json\n")
                outcomes.append(client.recv()["error"]["type"])
                outcomes.append(client.request({"op": "frobnicate"})["error"]["type"])
                outcomes.append(client.request({"op": "explain"})["error"]["type"])
                bad_value = dict(SPEC, s1={"Location": "Mars"})
                outcomes.append(client.request(
                    {"op": "explain", "query": bad_value})["error"]["type"])
                bad_measure = dict(SPEC, measure="Nope")
                outcomes.append(client.request(
                    {"op": "explain", "query": bad_measure})["error"]["type"])
                bad_agg = dict(SPEC, agg="MEDIAN")
                outcomes.append(client.request(
                    {"op": "explain", "query": bad_agg})["error"]["type"])
                outcomes.append(client.request(
                    {"op": "explain", "query": SPEC, "method": 7})["error"]["type"])
                # After all that abuse the connection still serves.
                assert client.ping()
                client.shutdown()
            return outcomes

        outcomes, _, _ = run(running_server(client_work))
        assert outcomes == [
            "ProtocolError", "ProtocolError", "ProtocolError",
            "QueryError", "QueryError", "QueryError", "ProtocolError",
        ]

    def test_client_helper_raises_typed(self, running_server):
        def client_work(host, port):
            with ServeClient(host, port) as client:
                with pytest.raises(ServeResponseError, match="QueryError"):
                    client.explain(dict(SPEC, measure="Nope"))
                client.shutdown()

        run(running_server(client_work))

    def test_half_closed_client_still_gets_its_answer(self, model, table, query):
        # The README's `printf ... | nc` workflow: the client sends its
        # request and immediately half-closes the write side.  EOF on the
        # read loop must not drop the in-flight response.
        import socket

        direct = ExplainSession(model, table).explain(query)

        async def scenario():
            service = ExplanationService(model, table, max_batch=4, max_wait_ms=20)
            server = ExplanationServer(service, port=0)
            await server.start()
            result: dict = {}

            def work():
                sock = socket.create_connection(
                    (server.host, server.port), timeout=30
                )
                try:
                    sock.sendall(encode_line({"op": "explain", "id": 1,
                                              "query": SPEC}))
                    sock.shutdown(socket.SHUT_WR)
                    chunks = []
                    while True:
                        chunk = sock.recv(65536)
                        if not chunk:
                            break
                        chunks.append(chunk)
                    result["raw"] = b"".join(chunks)
                finally:
                    sock.close()

            thread = threading.Thread(target=work)
            thread.start()
            while "raw" not in result and thread.is_alive():
                await asyncio.sleep(0.02)
            thread.join(timeout=30)
            await server.stop()
            return result

        result = run(scenario())
        response = json.loads(result["raw"].decode("utf-8"))
        assert response["ok"] is True
        assert response["report"] == report_to_dict(direct)

    def test_busy_port_is_typed_error_and_leaks_nothing(self, model, table):
        async def scenario():
            first = ExplanationServer(
                ExplanationService(model, table), port=0
            )
            await first.start()
            second_service = ExplanationService(model, table)
            second = ExplanationServer(second_service, port=first.port)
            with pytest.raises(ServeError, match="cannot bind"):
                await second.start()
            # The failed server's service was stopped, not leaked.
            assert second_service._closed
            await first.stop()

        run(scenario())

    def test_shutdown_op_requires_opt_in(self, model, table):
        async def scenario():
            service = ExplanationService(model, table)
            server = ExplanationServer(service, port=0, allow_shutdown=False)
            await server.start()
            outcome: dict = {}

            def work():
                with ServeClient(server.host, server.port) as client:
                    response = client.request({"op": "shutdown"})
                    outcome["type"] = response["error"]["type"]
                    outcome["pong"] = client.ping()

            thread = threading.Thread(target=work)
            thread.start()
            while not outcome.get("pong"):
                await asyncio.sleep(0.02)
            thread.join(timeout=10)
            await server.stop()
            return outcome

        outcome = run(scenario())
        assert outcome["type"] == "ProtocolError"
        assert outcome["pong"] is True


class TestServeCLI:
    def test_cli_server_boots_serves_and_drains(self, table, tmp_path):
        csv_path = tmp_path / "data.csv"
        model_path = tmp_path / "model.json"
        write_csv(table, csv_path)
        fit_model(table, measure_bins=3).save(model_path)

        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", str(csv_path),
                "--model", str(model_path), "--port", "0",
                "--max-wait-ms", "5", "--allow-shutdown",
            ],
            stderr=subprocess.PIPE,
            text=True,
            env={**__import__("os").environ,
                 "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
        )
        try:
            host = port = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                line = proc.stderr.readline()
                if not line:
                    break
                match = BANNER.search(line)
                if match:
                    host, port = match.group(1), int(match.group(2))
                    break
            assert port is not None, "server never announced its address"
            with ServeClient(host, port, timeout=30) as client:
                assert client.ping()
                report = client.explain(SPEC)
                assert report["explanations"]
                assert client.shutdown()
            code = proc.wait(timeout=60)
            tail = proc.stderr.read()
            assert code == 0, tail
            assert "drained cleanly" in tail
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


VIEW_SPEC = {"by": "Location", "measure": "LungCancer", "agg": "AVG"}


class TestExplainViewServing:
    def test_service_view_matches_session_and_counts(self, model, table):
        direct = ExplainSession(model, table).explain_view(VIEW_SPEC)

        async def scenario():
            async with ExplanationService(model, table) as service:
                summary = await service.explain_view(VIEW_SPEC)
                return summary, service.stats.views, service.stats.completed

        summary, views, completed = run(scenario())
        assert summary.to_dict() == direct.to_dict()
        assert views == 1
        assert completed >= 1  # dedup may fold repeated pair queries

    def test_service_view_rejects_malformed_spec(self, model, table):
        from repro.errors import QueryError

        async def scenario(view, **kwargs):
            async with ExplanationService(model, table) as service:
                await service.explain_view(view, **kwargs)

        with pytest.raises(QueryError, match="view spec"):
            run(scenario({"measure": "LungCancer"}))
        with pytest.raises(QueryError, match="orientation"):
            run(scenario(VIEW_SPEC, orientation="sideways"))

    def test_wire_explain_view_round_trip(
        self, running_server, model, table
    ):
        direct = ExplainSession(model, table).explain_view(VIEW_SPEC)

        def client_work(host, port):
            with ServeClient(host, port) as client:
                summary = client.explain_view(VIEW_SPEC, trace_id="view-1")
                traces = client.traces()
                stats = client.stats()
                missing = client.request({"op": "explain_view"})
                bad_orientation = client.request(
                    {
                        "op": "explain_view",
                        "view": VIEW_SPEC,
                        "orientation": "sideways",
                    }
                )
                client.shutdown()
                return summary, traces, stats, missing, bad_orientation

        (summary, traces, stats, missing, bad_orientation), _, service = run(
            running_server(client_work)
        )
        assert summary == direct.to_dict()
        assert all(pair["error"] is None for pair in summary["pairs"])
        assert stats["views"] == 1
        assert service.stats.views == 1
        # Each pair ran as its own traced request under the view's trace id.
        child_ids = {e["trace_id"] for e in traces}
        expected = {f"view-1.{i}" for i in range(len(summary["pairs"]))}
        assert expected <= child_ids
        assert missing["error"]["type"] == "ProtocolError"
        assert "missing 'view'" in missing["error"]["message"]
        assert bad_orientation["error"]["type"] == "QueryError"
