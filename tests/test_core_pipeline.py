"""End-to-end XInsight pipeline tests on the Fig. 1 lung-cancer scenario."""

import pytest

from repro.core import ExplanationType, XDASemantics, XInsight, XPlainerConfig
from repro.data import Aggregate, Subspace, WhyQuery
from repro.datasets import generate_lungcancer
from repro.errors import QueryError


@pytest.fixture(scope="module")
def engine():
    table = generate_lungcancer(n_rows=8000, seed=0)
    return XInsight(table, measure_bins=3).fit()


@pytest.fixture(scope="module")
def query():
    return WhyQuery.create(
        Subspace.of(Location="A"),
        Subspace.of(Location="B"),
        "LungCancer",
        Aggregate.AVG,
    )


class TestOfflinePhase:
    def test_fit_builds_graph_with_bin_node(self, engine):
        assert engine.graph.has_node("LungCancer_bin")
        assert engine.node_of("LungCancer") == "LungCancer_bin"

    def test_unfit_engine_raises(self):
        table = generate_lungcancer(n_rows=200, seed=1)
        with pytest.raises(QueryError):
            XInsight(table).learner

    def test_smoking_adjacent_to_severity(self, engine):
        assert engine.graph.has_edge("Smoking", "LungCancer_bin")


class TestOnlinePhase:
    def test_report_has_causal_and_non_causal(self, engine, query):
        report = engine.explain(query)
        assert report.delta > 0
        kinds = {e.type for e in report.explanations}
        assert ExplanationType.CAUSAL in kinds

    def test_smoking_ranked_as_causal_explanation(self, engine, query):
        report = engine.explain(query)
        causal_attrs = {e.attribute for e in report.causal()}
        assert "Smoking" in causal_attrs

    def test_smoking_yes_is_the_predicate(self, engine, query):
        report = engine.explain(query)
        smoking = next(e for e in report.explanations if e.attribute == "Smoking")
        assert smoking.predicate.values == frozenset({"Yes"})
        assert smoking.responsibility > 0.3

    def test_surgery_not_causal(self, engine, query):
        report = engine.explain(query)
        surgery = [e for e in report.explanations if e.attribute == "Surgery"]
        for e in surgery:
            assert e.type is ExplanationType.NON_CAUSAL

    def test_causal_ranked_before_non_causal(self, engine, query):
        report = engine.explain(query)
        seen_non_causal = False
        for e in report.explanations:
            if e.type is ExplanationType.NON_CAUSAL:
                seen_non_causal = True
            else:
                assert not seen_non_causal, "causal explanation after non-causal"

    def test_top_k(self, engine, query):
        report = engine.explain(query)
        assert len(report.top(1)) == 1

    def test_explanations_describe(self, engine, query):
        report = engine.explain(query)
        text = report.explanations[0].describe("LungCancer", "Location=A", "Location=B")
        assert "responsibility" in text

    def test_reversed_query_is_oriented(self, engine):
        reverse = WhyQuery.create(
            Subspace.of(Location="B"),
            Subspace.of(Location="A"),
            "LungCancer",
            Aggregate.AVG,
        )
        report = engine.explain(reverse)
        assert report.delta > 0

    def test_sum_aggregate_also_works(self, engine):
        q = WhyQuery.create(
            Subspace.of(Location="A"),
            Subspace.of(Location="B"),
            "LungCancer",
            Aggregate.SUM,
        )
        report = engine.explain(q)
        assert any(e.attribute == "Smoking" for e in report.explanations)

    def test_translations_exposed(self, engine, query):
        report = engine.explain(query)
        assert report.translations["Smoking"].is_causal

    def test_custom_config_respected(self, engine, query):
        report = engine.explain(query, config=XPlainerConfig(epsilon_fraction=0.5))
        assert isinstance(report.explanations, list)


class TestHomogeneityFromGraph:
    def test_downstream_attribute_not_homogeneous(self, engine, query):
        # Smoking is caused by Location (the foreground): not m-separated.
        assert not engine.is_homogeneous(query, "Smoking")
