"""Tests for skeleton learning, collider orientation and PC."""

import numpy as np
import pytest
from conftest import oracle_for, random_parent_map
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import learn_skeleton, orient_colliders, pc
from repro.graph import Endpoint, MixedGraph, dag_from_parents
from repro.graph.paths import unshielded_triples
from repro.independence import OracleCITest


class TestLearnSkeleton:
    def test_chain_skeleton(self):
        dag = dag_from_parents({"b": ["a"], "c": ["b"]})
        result = learn_skeleton(("a", "b", "c"), OracleCITest(dag))
        assert result.graph.has_edge("a", "b")
        assert result.graph.has_edge("b", "c")
        assert not result.graph.has_edge("a", "c")
        assert result.sepsets.get("a", "c") == {"b"}

    def test_collider_skeleton_keeps_marginal_independence(self):
        dag = dag_from_parents({"c": ["a", "b"]})
        result = learn_skeleton(("a", "b", "c"), OracleCITest(dag))
        assert not result.graph.has_edge("a", "b")
        assert result.sepsets.get("a", "b") == set()

    def test_max_depth_zero_only_tests_marginal(self):
        dag = dag_from_parents({"b": ["a"], "c": ["b"]})
        result = learn_skeleton(("a", "b", "c"), OracleCITest(dag), max_depth=0)
        # a ⫫ c | b requires depth 1: the spurious a-c edge survives.
        assert result.graph.has_edge("a", "c")

    def test_all_edges_circle_marked(self):
        dag = dag_from_parents({"b": ["a"]})
        result = learn_skeleton(("a", "b"), OracleCITest(dag))
        assert result.graph.mark("a", "b") is Endpoint.CIRCLE
        assert result.graph.mark("b", "a") is Endpoint.CIRCLE

    def test_tests_run_counted(self):
        dag = dag_from_parents({"b": ["a"], "c": ["b"]})
        result = learn_skeleton(("a", "b", "c"), OracleCITest(dag))
        assert result.tests_run > 0


class TestOrientColliders:
    def test_v_structure_oriented(self):
        dag = dag_from_parents({"c": ["a", "b"]})
        result = learn_skeleton(("a", "b", "c"), OracleCITest(dag))
        orient_colliders(result.graph, result.sepsets)
        assert result.graph.mark("a", "c") is Endpoint.ARROW
        assert result.graph.mark("b", "c") is Endpoint.ARROW
        # FCI convention: far endpoints stay circles.
        assert result.graph.mark("c", "a") is Endpoint.CIRCLE

    def test_chain_left_unoriented(self):
        dag = dag_from_parents({"b": ["a"], "c": ["b"]})
        result = learn_skeleton(("a", "b", "c"), OracleCITest(dag))
        orient_colliders(result.graph, result.sepsets)
        assert result.graph.mark("a", "b") is Endpoint.CIRCLE

    def test_cpdag_convention_sets_tails(self):
        dag = dag_from_parents({"c": ["a", "b"]})
        result = learn_skeleton(("a", "b", "c"), OracleCITest(dag))
        orient_colliders(result.graph, result.sepsets, as_cpdag=True)
        assert result.graph.is_parent("a", "c")
        assert result.graph.is_parent("b", "c")


class TestPC:
    def test_collider_fully_oriented(self):
        res = pc(("a", "b", "c"), oracle_for({"c": ["a", "b"]}))
        assert res.cpdag.is_parent("a", "c")
        assert res.cpdag.is_parent("b", "c")

    def test_chain_left_undirected(self):
        res = pc(("a", "b", "c"), oracle_for({"b": ["a"], "c": ["b"]}))
        g = res.cpdag
        assert g.mark("a", "b") is Endpoint.TAIL and g.mark("b", "a") is Endpoint.TAIL

    def test_meek_rule1_propagates(self):
        # a -> c <- b plus c - d: orienting a->c<-b forces c->d (else new
        # collider at c with d).
        res = pc(("a", "b", "c", "d"), oracle_for({"c": ["a", "b"], "d": ["c"]}))
        assert res.cpdag.is_parent("c", "d")

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        n=st.integers(min_value=3, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_pc_oracle_soundness(self, seed, n):
        """With an oracle: skeleton exact; directed edges match the DAG;
        every v-structure of the DAG is recovered."""
        rng = np.random.default_rng(seed)
        dag = dag_from_parents(random_parent_map(rng, n, 0.4))
        res = pc(tuple(dag.nodes), OracleCITest(dag))
        cpdag = res.cpdag
        assert cpdag.same_adjacencies(dag)
        for u, v, *_ in cpdag.edges():
            if cpdag.is_parent(u, v):
                assert dag.is_parent(u, v)
            elif cpdag.is_parent(v, u):
                assert dag.is_parent(v, u)
        for x, y, z in unshielded_triples(dag):
            if dag.is_parent(x, y) and dag.is_parent(z, y):
                assert cpdag.is_parent(x, y) and cpdag.is_parent(z, y)
