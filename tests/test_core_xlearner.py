"""Tests for XLearner (Alg. 1): FD peeling, FCI integration, orientation."""

import numpy as np
import pytest

from repro.core import peel_fd_sinks, xlearner
from repro.datasets import generate_cityinfo, generate_syn_a
from repro.discovery import fci
from repro.errors import DiscoveryError
from repro.fd import FD, build_fd_graph
from repro.graph import Endpoint, adjacency_scores, score_graph
from repro.independence import CachedCITest, ChiSquaredTest


class TestPeeling:
    def test_cityinfo_chain_peeling(self):
        fds = [FD("City", "State"), FD("State", "Country"), FD("City", "Country")]
        g = build_fd_graph(("City", "State", "Country"), fds)
        cards = {"City": 9, "State": 6, "Country": 2}
        edges = peel_fd_sinks(g, cards)
        # Country (deepest) connects to its lowest-cardinality parent State;
        # then State connects to City.
        assert edges == (("Country", "State"), ("State", "City"))

    def test_lowest_cardinality_parent_chosen(self):
        fds = [FD("big", "sink"), FD("small", "sink")]
        g = build_fd_graph(("big", "small", "sink"), fds)
        edges = peel_fd_sinks(g, {"big": 50, "small": 3, "sink": 2})
        assert edges == (("sink", "small"),)

    def test_no_fds_no_edges(self):
        g = build_fd_graph(("a", "b"), [])
        assert peel_fd_sinks(g, {}) == ()


class TestXLearnerCityInfo:
    def test_recovers_fig4_chain(self):
        """Fig. 4(c)-(d): City -> State -> Country, no City-Country edge."""
        table = generate_cityinfo(n_rows=500, seed=1)
        result = xlearner(table)
        g = result.pag
        assert g.is_parent("City", "State")
        assert g.is_parent("State", "Country")
        assert not g.has_edge("City", "Country")

    def test_plain_fci_fails_on_cityinfo(self):
        """Ex. 3.1: under FDs, faithfulness-based FCI isolates nodes."""
        table = generate_cityinfo(n_rows=500, seed=1)
        ci = CachedCITest(ChiSquaredTest(table))
        pag = fci(table.dimensions, ci).pag
        # The FD-induced conditional independences disconnect the chain:
        # FCI misses at least one of the two true adjacencies.
        true_edges = [("City", "State"), ("State", "Country")]
        assert sum(pag.has_edge(u, v) for u, v in true_edges) < 2

    def test_fd_skeleton_recorded(self):
        table = generate_cityinfo(n_rows=500, seed=1)
        result = xlearner(table)
        assert ("Country", "State") in result.fd_skeleton
        assert ("State", "City") in result.fd_skeleton


class TestXLearnerValidation:
    def test_single_column_rejected(self):
        table = generate_cityinfo(n_rows=50, seed=0)
        with pytest.raises(DiscoveryError):
            xlearner(table, columns=["City"])


class TestXLearnerSynA:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_beats_fci_on_fd_injected_data(self, seed):
        """The Table 6 effect at miniature scale: XLearner's combined F1
        exceeds plain FCI's on FD-injected causally-insufficient data."""
        case = generate_syn_a(n_nodes=8, seed=seed, n_rows=4000)
        table = case.table

        xl = xlearner(table)
        xl_scores = score_graph(xl.pag, case.truth_pag)

        ci = CachedCITest(ChiSquaredTest(table))
        plain = fci(table.dimensions, ci).pag
        fci_scores = score_graph(plain, case.truth_pag)

        assert xl_scores.combined.f1 >= fci_scores.combined.f1

    def test_fd_children_oriented_from_parent(self):
        case = generate_syn_a(n_nodes=8, seed=3, n_rows=3000)
        result = xlearner(case.table)
        oriented = 0
        for fd in case.injected_fds:
            if result.pag.has_edge(fd.lhs, fd.rhs):
                assert result.pag.is_parent(fd.lhs, fd.rhs) or result.pag.is_parent(
                    fd.rhs, fd.lhs
                )
                oriented += result.pag.is_parent(fd.lhs, fd.rhs)
        assert oriented >= 1  # at least one FD edge present and oriented along the FD

    def test_every_fd_node_appears_in_graph(self):
        case = generate_syn_a(n_nodes=8, seed=4, n_rows=2000)
        result = xlearner(case.table)
        for child in case.fd_children:
            # One-to-one collapses may merge a child into its parent; all
            # remaining children must be nodes of the augmented PAG.
            if child not in result.fd_graph.redundant:
                assert result.pag.has_node(child)

    def test_fci_subgraph_excludes_fd_children(self):
        case = generate_syn_a(n_nodes=8, seed=5, n_rows=2000)
        result = xlearner(case.table)
        fci_nodes = set(result.fci_result.pag.nodes)
        for child in case.fd_children:
            assert child not in fci_nodes
