"""Tests for FD detection and the FD-induced graph (Ex. 2.4 CityInfo)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Table
from repro.errors import FDError
from repro.fd import (
    FD,
    build_fd_graph,
    fd_graph_from_table,
    fd_violations,
    find_functional_dependencies,
    holds,
)


def cityinfo() -> Table:
    cities = ["sf", "la", "nyc", "buf", "par", "lyo"]
    states = {"sf": "CA", "la": "CA", "nyc": "NY", "buf": "NY", "par": "IDF", "lyo": "ARA"}
    countries = {"CA": "US", "NY": "US", "IDF": "FR", "ARA": "FR"}
    rng = np.random.default_rng(0)
    picks = rng.choice(cities, size=200).tolist()
    return Table.from_columns(
        {
            "City": picks,
            "State": [states[c] for c in picks],
            "Country": [countries[states[c]] for c in picks],
        }
    )


class TestDetection:
    def test_cityinfo_fds(self):
        fds = set(find_functional_dependencies(cityinfo(), max_key_fraction=1.0))
        assert FD("City", "State") in fds
        assert FD("City", "Country") in fds
        assert FD("State", "Country") in fds
        assert FD("Country", "State") not in fds
        assert FD("State", "City") not in fds

    def test_violations_counted(self):
        t = Table.from_columns(
            {"X": ["a", "a", "a", "b"], "Y": ["1", "1", "2", "3"]}
        )
        assert fd_violations(t, "X", "Y") == 1
        assert not holds(t, "X", "Y")
        assert holds(t, "X", "Y", tolerance=0.3)

    def test_self_fd_rejected(self):
        with pytest.raises(FDError):
            holds(cityinfo(), "City", "City")

    def test_bad_tolerance_rejected(self):
        with pytest.raises(FDError):
            holds(cityinfo(), "City", "State", tolerance=1.5)

    def test_measure_attribute_rejected(self):
        t = Table.from_columns({"d": ["a", "b"], "m": [1.0, 2.0]})
        with pytest.raises(FDError):
            find_functional_dependencies(t, ["d", "m"])

    def test_key_columns_skipped_as_lhs(self):
        t = Table.from_columns(
            {"id": [f"r{i}" for i in range(10)], "v": ["a", "b"] * 5}
        )
        fds = find_functional_dependencies(t)  # default max_key_fraction
        assert all(fd.lhs != "id" for fd in fds)

    def test_constant_columns_ignored(self):
        t = Table.from_columns({"c": ["k"] * 6, "v": ["a", "b", "a", "b", "a", "b"]})
        assert find_functional_dependencies(t) == []

    def test_one_to_one_fd_found_both_ways(self):
        t = Table.from_columns(
            {"code": ["x1", "x2", "x1"], "name": ["one", "two", "one"]}
        )
        fds = set(find_functional_dependencies(t, max_key_fraction=1.0))
        assert FD("code", "name") in fds and FD("name", "code") in fds


class TestFDGraph:
    def test_cityinfo_graph_structure(self):
        g = fd_graph_from_table(cityinfo())
        assert g.has_fd("City", "State")
        assert g.has_fd("State", "Country")
        assert g.has_fd("City", "Country")
        assert set(g.fd_nodes) == {"State", "Country"}
        assert set(g.root_nodes) == {"City"}

    def test_one_to_one_cycle_collapsed_to_representative(self):
        fds = [FD("a", "b"), FD("b", "a"), FD("a", "c")]
        g = build_fd_graph(("a", "b", "c"), fds, {"a": 2, "b": 2, "c": 2})
        # 'a' < 'b' by name tie-break: b dropped.
        assert g.redundant == {"b": "a"}
        assert g.has_fd("a", "c")
        assert "b" not in g.nodes

    def test_representative_prefers_low_cardinality(self):
        fds = [FD("hi", "lo"), FD("lo", "hi")]
        g = build_fd_graph(("hi", "lo"), fds, {"hi": 10, "lo": 2})
        assert g.redundant == {"hi": "lo"}

    def test_unknown_attribute_rejected(self):
        with pytest.raises(FDError):
            build_fd_graph(("a",), [FD("a", "zzz")])

    def test_isolated_nodes_kept(self):
        g = build_fd_graph(("a", "b", "free"), [FD("a", "b")])
        assert "free" in g.nodes
        assert "free" in g.root_nodes

    def test_empty_graph(self):
        g = build_fd_graph(("a", "b"), [])
        assert g.is_empty
        assert g.fd_nodes == ()


@given(
    n_rows=st.integers(min_value=20, max_value=120),
    seed=st.integers(min_value=0, max_value=9999),
)
@settings(max_examples=40, deadline=None)
def test_detected_fds_always_hold_exactly(n_rows, seed):
    """Property: every reported FD has zero violations at tolerance 0."""
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 4, size=n_rows)
    derived = (base // 2).astype(int)  # deterministic function of base
    noise = rng.integers(0, 3, size=n_rows)
    t = Table.from_columns(
        {
            "base": [f"b{v}" for v in base],
            "derived": [f"d{v}" for v in derived],
            "noise": [f"n{v}" for v in noise],
        }
    )
    fds = find_functional_dependencies(t, max_key_fraction=1.0)
    assert FD("base", "derived") in fds
    for fd in fds:
        assert fd_violations(t, fd.lhs, fd.rhs) == 0
