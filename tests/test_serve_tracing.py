"""Tracing through the serving stack: service, TCP server, HTTP gateway.

Pins the end-to-end observability contract of ISSUE 8:

* a traced request's ring entry holds the queue/flush spans plus the four
  online-phase spans (translation, homogeneity, workspace, search);
* dedup ride-alongs are tagged with the primary's trace id instead of
  duplicating the explain spans;
* slow requests bump ``slow_queries`` and emit one structured warning
  with the stage breakdown; ``--trace-dir`` exports Chrome trace files;
* both front-ends echo the trace id on every response — success, typed
  error, per-item batch envelope, and admission rejection alike;
* a poison query through the service counts each query exactly once in
  ``SessionStats`` (no batch-then-retry double counting).
"""

import asyncio
import json
import logging
import threading

import pytest

from repro import obs
from repro.core import ExplainSession, fit_model
from repro.core.reporting import report_to_dict
from repro.data import Aggregate, Subspace, WhyQuery
from repro.datasets import generate_lungcancer
from repro.errors import ReproError
from repro.serve import (
    ExplanationServer,
    ExplanationService,
    HttpGateway,
    ModelRegistry,
    ServeClient,
)

SPEC = {
    "s1": {"Location": "A"},
    "s2": {"Location": "B"},
    "measure": "LungCancer",
    "agg": "AVG",
}

EXPLAIN_SPANS = {"translation", "homogeneity", "workspace", "search"}


@pytest.fixture(scope="module")
def table():
    return generate_lungcancer(n_rows=800, seed=0)


@pytest.fixture(scope="module")
def model(table):
    return fit_model(table, measure_bins=3)


@pytest.fixture(scope="module")
def query():
    return WhyQuery.create(
        Subspace.of(Location="A"),
        Subspace.of(Location="B"),
        "LungCancer",
        Aggregate.AVG,
    )


def run(coro):
    return asyncio.run(coro)


def _span_names(span: dict) -> set:
    names = {span["name"]}
    for child in span.get("children", []):
        names |= _span_names(child)
    return names


class TestServiceTracing:
    def test_traced_request_lands_in_ring_with_phase_spans(
        self, model, table, query
    ):
        async def scenario():
            async with ExplanationService(model, table) as service:
                trace = obs.Trace(name="request", trace_id="svc-1")
                report = await service.explain(query, trace=trace)
                return service, report

        service, report = run(scenario())
        (entry,) = service.traces_snapshot()
        assert entry["trace_id"] == "svc-1"
        assert entry["ok"] is True and entry["slow"] is False
        assert entry["latency_ms"] >= 0
        assert entry["query"]
        names = _span_names(entry["root"])
        assert {"queue", "flush", "explain"} <= names
        assert EXPLAIN_SPANS <= names
        assert report.explanations is not None

    def test_untraced_requests_record_nothing(self, model, table, query):
        async def scenario():
            async with ExplanationService(model, table) as service:
                await service.explain(query)
                return service

        service = run(scenario())
        assert service.traces_snapshot() == []

    def test_tracing_is_invisible_in_results(self, model, table, query):
        direct = ExplainSession(model, table).explain(query)

        async def scenario():
            async with ExplanationService(model, table) as service:
                return await service.explain(
                    query, trace=obs.Trace(name="request")
                )

        assert report_to_dict(run(scenario())) == report_to_dict(direct)

    def test_dedup_riders_point_at_the_primary(self, model, table, query):
        async def scenario():
            async with ExplanationService(
                model, table, max_batch=8, max_wait_ms=20
            ) as service:
                traces = [
                    obs.Trace(name="request", trace_id=f"dup-{i}")
                    for i in range(3)
                ]
                await asyncio.gather(
                    *(service.explain(query, trace=t) for t in traces)
                )
                return service

        service = run(scenario())
        entries = {e["trace_id"]: e for e in service.traces_snapshot()}
        assert len(entries) == 3
        carried = [
            tid for tid, e in entries.items()
            if EXPLAIN_SPANS <= _span_names(e["root"])
        ]
        assert len(carried) == 1  # exactly one explain ran
        (primary_id,) = carried
        for tid, entry in entries.items():
            if tid == primary_id:
                continue
            flush_spans = [
                s for s in entry["root"]["children"] if s["name"] == "flush"
            ]
            assert flush_spans, entry
            tags = flush_spans[0].get("tags", {})
            assert tags.get("deduped") is True
            assert tags.get("primary_trace") == primary_id

    def test_ring_capacity_is_honored(self, model, table, query):
        async def scenario():
            async with ExplanationService(
                model, table, trace_ring=2, max_wait_ms=0
            ) as service:
                for i in range(4):
                    await service.explain(
                        query, trace=obs.Trace(trace_id=f"ring-{i}")
                    )
                return service

        service = run(scenario())
        assert [e["trace_id"] for e in service.traces_snapshot()] == [
            "ring-3", "ring-2"
        ]

    def test_slow_query_counter_and_structured_log(self, model, table, query):
        # Capture with a handler on the logger itself — caplog relies on
        # propagation, which configure_logging (run by in-process CLI
        # tests elsewhere in the suite) turns off for the "repro" root.
        captured: list[logging.LogRecord] = []

        class _Capture(logging.Handler):
            def emit(self, record):
                captured.append(record)

        logger = logging.getLogger("repro.serve")
        handler = _Capture(level=logging.WARNING)
        logger.addHandler(handler)
        old_level = logger.level
        logger.setLevel(logging.WARNING)

        async def scenario():
            async with ExplanationService(
                model, table, slow_query_ms=0.0
            ) as service:
                await service.explain(query, trace=obs.Trace(trace_id="slow-1"))
                return service

        try:
            service = run(scenario())
        finally:
            logger.removeHandler(handler)
            logger.setLevel(old_level)
        assert service.stats.slow_queries == 1
        assert service.stats.snapshot()["slow_queries"] == 1
        (entry,) = service.traces_snapshot()
        assert entry["slow"] is True
        records = [
            r for r in captured
            if getattr(r, "event", None) == "slow_query"
        ]
        assert records, captured
        record = records[0]
        assert record.trace_id == "slow-1"
        assert record.latency_ms >= 0
        assert "explain" in record.stages_ms

    def test_untraced_requests_never_count_slow(self, model, table, query):
        async def scenario():
            async with ExplanationService(
                model, table, slow_query_ms=0.0
            ) as service:
                await service.explain(query)
                return service

        assert run(scenario()).stats.slow_queries == 0

    def test_trace_dir_exports_chrome_files(self, model, table, query, tmp_path):
        out = tmp_path / "traces"

        async def scenario():
            async with ExplanationService(
                model, table, trace_dir=out
            ) as service:
                await service.explain(query, trace=obs.Trace(trace_id="file-1"))

        run(scenario())
        payload = json.loads((out / "file-1.trace.json").read_text())
        assert payload["otherData"]["trace_id"] == "file-1"
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_invalid_trace_knobs_are_typed(self, model, table):
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            ExplanationService(model, table, slow_query_ms=-1)
        with pytest.raises(ValueError):
            ExplanationService(model, table, trace_ring=-1)

    def test_poison_query_counts_each_query_once(self, model, table, query):
        # Satellite 3: the service's on_error="return" batch attempts each
        # query exactly once — a poison batch-mate must not re-run the good
        # query (which would double-count SessionStats.queries).
        bad = WhyQuery(query.s1, query.s2, "NoSuchMeasure", Aggregate.AVG)

        async def scenario():
            async with ExplanationService(
                model, table, max_batch=8, max_wait_ms=20
            ) as service:
                results = await asyncio.gather(
                    service.explain(query),
                    service.explain(bad),
                    return_exceptions=True,
                )
                return service, results

        service, (good, err) = run(scenario())
        assert not isinstance(good, BaseException)
        assert isinstance(err, ReproError)
        assert service.stats.completed == 1
        assert service.stats.failed == 1
        assert service.session.cache_info()["queries"] == 2


@pytest.fixture()
def running_server(model, table):
    """A live TCP server + a helper running client work in a thread."""

    async def scenario(client_work, **service_kwargs):
        service = ExplanationService(
            model, table, max_batch=16, max_wait_ms=5, **service_kwargs
        )
        server = ExplanationServer(service, port=0, allow_shutdown=True)
        await server.start()
        result: dict = {}

        def work():
            try:
                result["value"] = client_work(server.host, server.port)
            except BaseException as exc:
                result["error"] = exc

        thread = threading.Thread(target=work)
        thread.start()
        await server.serve_until_shutdown()
        thread.join(timeout=30)
        if "error" in result:
            raise result["error"]
        return result.get("value"), service

    return scenario


class TestTcpTracing:
    def test_trace_id_echoed_and_generated(self, running_server):
        def client_work(host, port):
            with ServeClient(host, port) as client:
                chosen = client.request(
                    {"op": "explain", "query": SPEC, "trace_id": "tcp-1"}
                )
                minted = client.request({"op": "explain", "query": SPEC})
                pong = client.request({"op": "ping"})
                traces = client.traces()
                client.shutdown()
                return chosen, minted, pong, traces

        (chosen, minted, pong, traces), _ = run(running_server(client_work))
        assert chosen["ok"] and chosen["trace_id"] == "tcp-1"
        assert minted["ok"] and obs.valid_trace_id(minted["trace_id"])
        assert obs.valid_trace_id(pong["trace_id"])  # every op echoes one
        by_id = {e["trace_id"]: e for e in traces}
        assert "tcp-1" in by_id and minted["trace_id"] in by_id
        entry = by_id["tcp-1"]
        assert EXPLAIN_SPANS <= _span_names(entry["root"])
        tags = entry["root"]["tags"]
        assert tags["op"] == "explain" and tags["proto"] == "tcp"

    def test_error_envelopes_carry_trace_id(self, running_server):
        def client_work(host, port):
            with ServeClient(host, port) as client:
                bad_query = client.request(
                    {"op": "explain", "trace_id": "tcp-err"}
                )
                bad_trace = client.request(
                    {"op": "explain", "query": SPEC, "trace_id": "not ok!"}
                )
                unknown_op = client.request({"op": "frobnicate"})
                client.shutdown()
                return bad_query, bad_trace, unknown_op

        (bad_query, bad_trace, unknown_op), _ = run(running_server(client_work))
        assert not bad_query["ok"] and bad_query["trace_id"] == "tcp-err"
        assert not bad_trace["ok"]
        assert bad_trace["error"]["type"] == "ProtocolError"
        assert "trace_id" in bad_trace["error"]["message"]
        assert obs.valid_trace_id(bad_trace["trace_id"])  # a fresh one
        assert obs.valid_trace_id(unknown_op["trace_id"])

    def test_stats_surface_carries_trace_knobs(self, running_server):
        def client_work(host, port):
            with ServeClient(host, port) as client:
                stats = client.stats()
                client.shutdown()
                return stats

        (stats,), = [run(running_server(client_work, slow_query_ms=250.0))[:1]]
        assert stats["slow_queries"] == 0
        assert stats["config"]["slow_query_ms"] == 250.0
        assert stats["config"]["trace_ring"] == 64


def _http_request(host, port, method, path, payload=None, headers=None):
    """Blocking HTTP round trip; returns (status, headers, parsed body)."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        request_headers = dict(headers or {})
        if body is not None:
            request_headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=request_headers)
        response = conn.getresponse()
        raw = response.read()
        parsed = (
            json.loads(raw)
            if response.getheader("Content-Type", "").startswith(
                "application/json"
            )
            else raw.decode("utf-8")
        )
        return response.status, dict(response.getheaders()), parsed
    finally:
        conn.close()


@pytest.fixture()
def http_stack(model, table):
    """Run client_work(host, port) in a thread against a live gateway
    over a pinned single-model ('demo') registry."""

    def runner(client_work):
        async def scenario():
            service = ExplanationService(model, table, max_wait_ms=5)
            registry = ModelRegistry.for_service(service, model_id="demo")
            async with registry:
                async with HttpGateway(registry, port=0) as gateway:
                    result: dict = {}

                    def work():
                        try:
                            result["value"] = client_work(
                                gateway.host, gateway.port
                            )
                        except BaseException as exc:
                            result["error"] = exc

                    thread = threading.Thread(target=work)
                    thread.start()
                    while thread.is_alive():
                        await asyncio.sleep(0.02)
                    thread.join(timeout=30)
                    if "error" in result:
                        raise result["error"]
                    return result.get("value")

        return run(scenario())

    return runner


class TestHttpTracing:
    def test_header_echoed_on_every_route_and_in_traces(self, http_stack):
        def client_work(host, port):
            status, headers, answer = _http_request(
                host, port, "POST", "/v1/models/demo/explain",
                {"query": SPEC},
                headers={"X-Repro-Trace-Id": "http-1"},
            )
            assert status == 200, answer
            _, health_headers, _ = _http_request(
                host, port, "GET", "/healthz",
                headers={"X-Repro-Trace-Id": "http-2"},
            )
            status, _, traced = _http_request(
                host, port, "GET", "/v1/models/demo/traces"
            )
            assert status == 200, traced
            return headers, answer, health_headers, traced

        headers, answer, health_headers, traced = http_stack(client_work)
        assert headers["X-Repro-Trace-Id"] == "http-1"
        assert answer["trace_id"] == "http-1"
        assert health_headers["X-Repro-Trace-Id"] == "http-2"
        (entry,) = [
            e for e in traced["traces"] if e["trace_id"] == "http-1"
        ]
        assert EXPLAIN_SPANS <= _span_names(entry["root"])
        tags = entry["root"]["tags"]
        assert tags["proto"] == "http" and tags["model"] == "demo"

    def test_body_trace_id_used_header_wins(self, http_stack):
        def client_work(host, port):
            _, h1, body1 = _http_request(
                host, port, "POST", "/v1/models/demo/explain",
                {"query": SPEC, "trace_id": "from-body"},
            )
            _, h2, body2 = _http_request(
                host, port, "POST", "/v1/models/demo/explain",
                {"query": SPEC, "trace_id": "from-body-2"},
                headers={"X-Repro-Trace-Id": "from-header"},
            )
            _, h3, body3 = _http_request(
                host, port, "POST", "/v1/models/demo/explain",
                {"query": SPEC},
            )
            return (h1, body1), (h2, body2), (h3, body3)

        (h1, b1), (h2, b2), (h3, b3) = http_stack(client_work)
        assert b1["trace_id"] == "from-body"
        assert h1["X-Repro-Trace-Id"] == "from-body"
        assert b2["trace_id"] == "from-header"
        assert h2["X-Repro-Trace-Id"] == "from-header"
        assert obs.valid_trace_id(b3["trace_id"])  # minted server-side
        assert h3["X-Repro-Trace-Id"] == b3["trace_id"]

    def test_batch_items_carry_id_and_derived_trace_id(
        self, http_stack, monkeypatch
    ):
        # Satellite 2: per-item envelopes echo the request 'id' AND a
        # per-item trace id derived from the request's — for successes
        # and failures alike.  Malformed specs are rejected whole-request
        # at parse time, so the failing item must die at explain time:
        # poison one (valid) query inside the session.
        from repro.core.session import ExplainSession
        from repro.errors import QueryError

        bad_spec = {
            "s1": {"Location": "B"}, "s2": {"Location": "A"},
            "measure": "LungCancer", "agg": "AVG",
        }
        marker = Subspace.of(Location="B")
        original = ExplainSession._explain_locked

        def poisoned(self, query, *args, **kwargs):
            if query.s1 == marker:
                raise QueryError("injected poison")
            return original(self, query, *args, **kwargs)

        monkeypatch.setattr(ExplainSession, "_explain_locked", poisoned)

        def client_work(host, port):
            status, headers, body = _http_request(
                host, port, "POST", "/v1/models/demo/explain",
                {
                    "queries": [
                        dict(SPEC, id="first"),
                        dict(bad_spec, id="second"),
                        SPEC,
                    ],
                    "trace_id": "batch-1",
                },
            )
            return status, headers, body

        status, headers, body = http_stack(client_work)
        assert status == 200 and body["ok"], body
        assert body["trace_id"] == "batch-1"
        assert headers["X-Repro-Trace-Id"] == "batch-1"
        first, second, third = body["results"]
        assert first["ok"] and first["id"] == "first"
        assert first["trace_id"] == "batch-1.0"
        assert not second["ok"] and second["id"] == "second"
        assert second["trace_id"] == "batch-1.1"
        assert second["error"]["type"] == "QueryError"
        assert third["ok"] and "id" not in third
        assert third["trace_id"] == "batch-1.2"

    def test_errors_echo_trace_id(self, http_stack):
        def client_work(host, port):
            status404, h404, b404 = _http_request(
                host, port, "GET", "/v1/models/ghost/stats",
                headers={"X-Repro-Trace-Id": "err-404"},
            )
            status400, h400, b400 = _http_request(
                host, port, "POST", "/v1/models/demo/explain",
                {"query": SPEC},
                headers={"X-Repro-Trace-Id": "bad id!"},
            )
            return (status404, h404, b404), (status400, h400, b400)

        (s404, h404, b404), (s400, h400, b400) = http_stack(client_work)
        assert s404 == 404 and b404["trace_id"] == "err-404"
        assert h404["X-Repro-Trace-Id"] == "err-404"
        assert s400 == 400 and b400["error"]["type"] == "ProtocolError"
        # The bad header is rejected, so a fresh id is minted and echoed.
        assert obs.valid_trace_id(b400["trace_id"])
        assert h400["X-Repro-Trace-Id"] == b400["trace_id"]

    def test_invalid_body_trace_id_rejected(self, http_stack):
        def client_work(host, port):
            return _http_request(
                host, port, "POST", "/v1/models/demo/explain",
                {"query": SPEC, "trace_id": "bad body id!"},
            )

        status, headers, body = http_stack(client_work)
        assert status == 400 and body["error"]["type"] == "ProtocolError"
        assert obs.valid_trace_id(body["trace_id"])
        assert headers["X-Repro-Trace-Id"] == body["trace_id"]
