"""Discovery-parity suite: vectorized CI engine vs the per-stratum baseline.

The vectorized engine (repro.independence.engine) must be a *refactoring*
of the statistics, not a new test: identical statistics/p-values (1e-9)
per probe, and identical skeletons, sepsets, PAGs and XLearner output on
the synthetic benchmarks and the m-separation oracle datasets.
"""

from itertools import combinations

import numpy as np
import pytest
from conftest import random_parent_map

from repro.core.xlearner import xlearner
from repro.data.discretize import discretize
from repro.datasets import generate_syn_a, generate_syn_b
from repro.discovery import fci, fci_from_table, learn_skeleton, pc
from repro.graph import dag_from_parents, latent_projection
from repro.independence import (
    CachedCITest,
    ChiSquaredTest,
    GTest,
    OracleCITest,
    VectorizedChiSquaredTest,
    VectorizedGTest,
)

ATOL = 1e-9


@pytest.fixture(scope="module")
def syn_a_table():
    return generate_syn_a(n_nodes=8, seed=0, n_rows=800).table


@pytest.fixture(scope="module")
def syn_b_table():
    case = generate_syn_b(n_rows=1500, seed=1)
    binned, _ = discretize(case.table, "Z", n_bins=5)
    return binned


def probe_plan(columns, max_z=2, per_size=4):
    """A bounded, deterministic sample of (x, y | Z) probes."""
    rng = np.random.default_rng(0)
    probes = []
    for x, y in combinations(columns, 2):
        rest = [c for c in columns if c not in (x, y)]
        for size in range(0, max_z + 1):
            subsets = list(combinations(rest, size))
            if len(subsets) > per_size:
                picks = rng.choice(len(subsets), size=per_size, replace=False)
                subsets = [subsets[i] for i in sorted(picks)]
            probes.extend((x, y, z) for z in subsets)
    return probes


def assert_result_parity(old, new):
    assert old.dof == new.dof, (old, new)
    assert abs(old.statistic - new.statistic) <= ATOL, (old, new)
    assert abs(old.p_value - new.p_value) <= ATOL, (old, new)


def edge_set(graph):
    return {frozenset((u, v)) for u, v, _, _ in graph.edges()}


def mark_signature(graph):
    sig = {}
    for u, v, mark_u, mark_v in graph.edges():
        sig[(u, v)] = mark_u
        sig[(v, u)] = mark_v
    return sig


class TestProbeParity:
    @pytest.mark.parametrize(
        "old_cls,new_cls",
        [(ChiSquaredTest, VectorizedChiSquaredTest), (GTest, VectorizedGTest)],
        ids=["chi2", "g"],
    )
    def test_syn_a_probes(self, syn_a_table, old_cls, new_cls):
        columns = syn_a_table.dimensions[:8]
        old, new = old_cls(syn_a_table), new_cls(syn_a_table)
        for x, y, z in probe_plan(columns):
            assert_result_parity(old.test(x, y, z), new.test(x, y, z))

    @pytest.mark.parametrize(
        "old_cls,new_cls",
        [(ChiSquaredTest, VectorizedChiSquaredTest), (GTest, VectorizedGTest)],
        ids=["chi2", "g"],
    )
    def test_syn_b_probes(self, syn_b_table, old_cls, new_cls):
        columns = syn_b_table.dimensions
        old, new = old_cls(syn_b_table), new_cls(syn_b_table)
        for x, y, z in probe_plan(columns, max_z=1):
            assert_result_parity(old.test(x, y, z), new.test(x, y, z))

    def test_batch_matches_singles(self, syn_a_table):
        columns = syn_a_table.dimensions[:6]
        probes = probe_plan(columns, max_z=2)
        test = VectorizedChiSquaredTest(syn_a_table)
        for probe, batched in zip(probes, test.test_batch(probes)):
            single = test.test(*probe)
            assert batched.statistic == single.statistic
            assert batched.p_value == single.p_value
            assert batched.dof == single.dof

    def test_sparse_path_matches_dense(self, syn_a_table):
        columns = syn_a_table.dimensions[:6]
        dense = VectorizedChiSquaredTest(syn_a_table)
        sparse = VectorizedChiSquaredTest(syn_a_table, dense_limit=1)
        for x, y, z in probe_plan(columns, max_z=2):
            assert_result_parity(dense.test(x, y, z), sparse.test(x, y, z))

    def test_strata_cache_is_bounded(self):
        from repro.independence.engine import _STRATA_CACHE_SIZE, EncodedDataset

        data = EncodedDataset.from_arrays(
            {f"c{i}": [0, 1, i % 2] for i in range(12)}
        )
        columns = data.columns
        for i, x in enumerate(columns):
            for y in columns[i + 1 :]:
                data.strata((x, y))
        assert len(data._strata_cache) <= _STRATA_CACHE_SIZE

    def test_min_stratum_rows_respected(self, syn_a_table):
        columns = syn_a_table.dimensions[:5]
        old = ChiSquaredTest(syn_a_table, min_stratum_rows=30)
        new = VectorizedChiSquaredTest(syn_a_table, min_stratum_rows=30)
        for x, y, z in probe_plan(columns, max_z=2):
            assert_result_parity(old.test(x, y, z), new.test(x, y, z))


class TestSkeletonParity:
    def test_syn_a_skeleton_identical(self, syn_a_table):
        nodes = syn_a_table.dimensions
        old = learn_skeleton(nodes, CachedCITest(ChiSquaredTest(syn_a_table)))
        new = learn_skeleton(
            nodes, CachedCITest(VectorizedChiSquaredTest(syn_a_table))
        )
        assert edge_set(old.graph) == edge_set(new.graph)
        assert old.sepsets == new.sepsets

    def test_syn_b_skeleton_identical(self, syn_b_table):
        nodes = syn_b_table.dimensions
        old = learn_skeleton(nodes, CachedCITest(ChiSquaredTest(syn_b_table)))
        new = learn_skeleton(
            nodes, CachedCITest(VectorizedChiSquaredTest(syn_b_table))
        )
        assert edge_set(old.graph) == edge_set(new.graph)
        assert old.sepsets == new.sepsets

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_oracle_batched_replay_identical(self, seed):
        # Force the batched replay with a per-probe oracle: the replayed
        # visit order must reproduce the sequential skeleton exactly.
        rng = np.random.default_rng(seed)
        dag = dag_from_parents(random_parent_map(rng, 7, 0.4))
        nodes = tuple(dag.nodes)
        seq = learn_skeleton(nodes, OracleCITest(dag), batch=False)
        bat = learn_skeleton(nodes, OracleCITest(dag), batch=True)
        assert edge_set(seq.graph) == edge_set(bat.graph)
        assert seq.sepsets == bat.sepsets


class TestDiscoveryParity:
    def test_fci_pag_identical_on_syn_a(self, syn_a_table):
        old = fci_from_table(syn_a_table, vectorized=False, max_depth=3)
        new = fci_from_table(syn_a_table, vectorized=True, max_depth=3)
        assert mark_signature(old.pag) == mark_signature(new.pag)
        assert old.sepsets == new.sepsets

    def test_pc_cpdag_identical_on_syn_b(self, syn_b_table):
        nodes = syn_b_table.dimensions
        old = pc(nodes, CachedCITest(ChiSquaredTest(syn_b_table)))
        new = pc(nodes, CachedCITest(VectorizedChiSquaredTest(syn_b_table)))
        assert mark_signature(old.cpdag) == mark_signature(new.cpdag)

    def test_xlearner_pag_identical_on_syn_a(self, syn_a_table):
        old = xlearner(
            syn_a_table,
            ci_test=CachedCITest(ChiSquaredTest(syn_a_table)),
            max_depth=3,
        )
        new = xlearner(syn_a_table, max_depth=3)  # default: vectorized engine
        assert mark_signature(old.pag) == mark_signature(new.pag)
        assert old.fd_skeleton == new.fd_skeleton

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fci_oracle_batched_replay_identical(self, seed):
        rng = np.random.default_rng(seed)
        names = [f"v{i}" for i in range(7)]
        dag = dag_from_parents(random_parent_map(rng, 7, 0.4))
        latent = set(rng.choice(names, size=2, replace=False).tolist())
        observed = tuple(v for v in names if v not in latent)
        mag = latent_projection(dag, observed)

        class BatchedOracle(OracleCITest):
            supports_batch = True  # routes through the default looped batch

        seq = fci(observed, OracleCITest(mag), max_dsep_size=None)
        bat = fci(observed, BatchedOracle(mag), max_dsep_size=None)
        assert mark_signature(seq.pag) == mark_signature(bat.pag)
        assert seq.sepsets == bat.sepsets


class TestForkSharedStrata:
    """EncodedDataset.fork publishes computed strata read-only to siblings
    (the ROADMAP "read-mostly shared stratum cache" item): a conditioning
    set stratified by any fork is reused — not recomputed — by the others,
    while each fork keeps its private unlocked LRU."""

    def data(self):
        from repro.independence.engine import EncodedDataset

        rng = np.random.default_rng(7)
        return EncodedDataset.from_arrays(
            {name: rng.integers(0, 4, size=300).tolist() for name in "abcd"}
        )

    def test_fork_reuses_published_strata(self):
        parent = self.data()
        first, second = parent.fork(), parent.fork()
        codes_first, n_first = first.strata(("a", "b"))
        codes_second, n_second = second.strata(("a", "b"))
        # Same array object: the second fork read the published snapshot
        # instead of recomputing the partition.
        assert codes_second is codes_first
        assert n_second == n_first

    def test_parent_computation_visible_to_forks_and_vice_versa(self):
        parent = self.data()
        codes_parent, _ = parent.strata(("c",))
        fork = parent.fork()
        assert fork.strata(("c",))[0] is codes_parent
        codes_fork, _ = fork.strata(("a", "d"))
        assert parent.strata(("a", "d"))[0] is codes_fork

    def test_shared_results_match_fresh_computation(self):
        parent = self.data()
        fork = parent.fork()
        fork.strata(("a", "b"))
        shared_codes, shared_n = parent.strata(("a", "b"))
        fresh = self.data()  # no publications
        fresh_codes, fresh_n = fresh.strata(("a", "b"))
        assert shared_n == fresh_n
        assert np.array_equal(shared_codes, fresh_codes)

    def test_pickle_does_not_ship_snapshot(self):
        import pickle

        parent = self.data()
        parent.strata(("a",))
        clone = pickle.loads(pickle.dumps(parent))
        assert clone._shared_strata.snapshot == {}
        assert clone._strata_cache == {}
        # the unpickled copy still computes (and publishes) independently
        assert np.array_equal(clone.strata(("a",))[0], parent.strata(("a",))[0])

    def test_publish_respects_cache_cap(self):
        from repro.independence.engine import _SharedStrata

        shared = _SharedStrata()
        shared.publish(("a",), (np.zeros(1), 1), cap=1)
        shared.publish(("b",), (np.ones(1), 1), cap=1)  # over cap: dropped
        assert set(shared.snapshot) == {("a",)}
        shared.publish(("a",), (np.ones(1), 2), cap=4)  # no overwrite
        assert shared.snapshot[("a",)][1] == 1
