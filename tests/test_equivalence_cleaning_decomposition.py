"""Tests for MAG equivalence, missing-value cleaning, SUM decomposition."""

import numpy as np
import pytest

from repro.data import Aggregate, AttributeProfile, Subspace, Table, WhyQuery
from repro.data.cleaning import drop_missing, missing_mask, summarize_missing
from repro.core.decomposition import count_based_share, decompose_sum_delta
from repro.discovery import fci
from repro.errors import ExplanationError, GraphError
from repro.graph import Endpoint, MixedGraph, dag_from_parents
from repro.graph.equivalence import (
    enumerate_mags_in_class,
    invariant_marks,
    markov_equivalent,
    same_unshielded_colliders,
)
from repro.independence import OracleCITest


class TestMarkovEquivalence:
    def test_chain_fork_equivalent(self):
        chain = dag_from_parents({"b": ["a"], "c": ["b"]})
        fork = dag_from_parents({"a": ["b"], "c": ["b"]})
        assert markov_equivalent(chain, fork)

    def test_collider_not_equivalent_to_chain(self):
        chain = dag_from_parents({"b": ["a"], "c": ["b"]})
        collider = dag_from_parents({"b": ["a", "c"]})
        assert not markov_equivalent(chain, collider)

    def test_different_skeletons_not_equivalent(self):
        g1 = dag_from_parents({"b": ["a"], "c": []})
        g2 = dag_from_parents({"b": ["a"], "c": ["b"]})
        assert not markov_equivalent(g1, g2)

    def test_non_mag_rejected(self):
        g = MixedGraph(["a", "b"])
        g.add_edge("a", "b")  # circle marks
        with pytest.raises(GraphError):
            markov_equivalent(g, g)

    def test_same_unshielded_colliders_detects_difference(self):
        collider = dag_from_parents({"b": ["a", "c"]})
        chain = dag_from_parents({"b": ["a"], "c": ["b"]})
        assert not same_unshielded_colliders(collider, chain)

    def test_equivalence_is_reflexive_and_symmetric(self):
        g = dag_from_parents({"b": ["a"], "c": ["b"], "d": ["b"]})
        h = dag_from_parents({"a": ["b"], "c": ["b"], "d": ["b"]})
        assert markov_equivalent(g, g)
        assert markov_equivalent(g, h) == markov_equivalent(h, g)


class TestEnumerateClass:
    def test_chain_pag_resolves_to_equivalent_mags(self):
        dag = dag_from_parents({"b": ["a"], "c": ["b"]})
        pag = fci(("a", "b", "c"), OracleCITest(dag)).pag
        mags = enumerate_mags_in_class(pag)
        assert len(mags) >= 3  # chain, reverse chain, fork (+ possible ↔ variants)
        for mag in mags:
            assert mag.same_adjacencies(dag)

    def test_truth_is_in_the_enumerated_class(self):
        dag = dag_from_parents({"c": ["a", "b"], "d": ["c"]})
        pag = fci(tuple("abcd"), OracleCITest(dag)).pag
        mags = enumerate_mags_in_class(pag)
        assert any(m == dag for m in mags)

    def test_invariant_marks_match_pag_claims(self):
        """Def. 2.8 condition 2: every non-circle PAG mark is invariant in
        the class, verified by brute-force enumeration."""
        dag = dag_from_parents({"c": ["a", "b"], "d": ["c"]})
        pag = fci(tuple("abcd"), OracleCITest(dag)).pag
        mags = enumerate_mags_in_class(pag)
        equivalent = [m for m in mags if markov_equivalent(m, dag)]
        invariants = invariant_marks(equivalent)
        for u, v, mark_u, mark_v in pag.edges():
            if mark_v is not Endpoint.CIRCLE:
                assert invariants.get((u, v)) == mark_v
            if mark_u is not Endpoint.CIRCLE:
                assert invariants.get((v, u)) == mark_u

    def test_limit_guard(self):
        g = MixedGraph([f"v{i}" for i in range(10)])
        for i in range(9):
            g.add_edge(f"v{i}", f"v{i+1}")
        with pytest.raises(GraphError):
            enumerate_mags_in_class(g, limit=4)


class TestCleaning:
    def make_dirty(self) -> Table:
        return Table.from_columns(
            {
                "d": ["a", None, "b", "", "c"],
                "m": [1.0, 2.0, float("nan"), 4.0, 5.0],
            }
        )

    def test_missing_mask(self):
        mask = missing_mask(self.make_dirty())
        assert mask.tolist() == [False, True, True, True, False]

    def test_drop_missing(self):
        clean = drop_missing(self.make_dirty())
        assert clean.n_rows == 2
        assert clean.values("d") == ["a", "c"]

    def test_summarize_missing(self):
        summary = summarize_missing(self.make_dirty())
        assert summary == {"d": 2, "m": 1}

    def test_clean_table_returned_unchanged(self):
        t = Table.from_columns({"d": ["a", "b"], "m": [1.0, 2.0]})
        assert drop_missing(t) is t

    def test_infinite_measures_dropped(self):
        t = Table.from_columns({"m": [1.0, float("inf"), 3.0]})
        assert drop_missing(t).n_rows == 2


class TestSumDecomposition:
    def make_profile(self, count_driven: bool) -> AttributeProfile:
        rng = np.random.default_rng(0)
        n = 6000
        f = rng.integers(0, 2, size=n)
        y = rng.integers(0, 4, size=n)
        if count_driven:
            # Same conditional mean everywhere; counts differ: keep y=0
            # much likelier under f=1.
            y = np.where(
                (f == 1) & (rng.random(n) < 0.5), 0, y
            )
            z = rng.normal(10.0, 1.0, size=n)
        else:
            # Same counts; the mean of y=0 differs by sibling.
            z = rng.normal(10.0, 1.0, size=n) + 8.0 * ((y == 0) & (f == 1))
        table = Table.from_columns(
            {
                "F": [f"f{v}" for v in f],
                "Y": [f"y{v}" for v in y],
                "Z": z,
            }
        )
        query = WhyQuery.create(
            Subspace.of(F="f1"), Subspace.of(F="f0"), "Z", Aggregate.SUM
        )
        return AttributeProfile.build(table, query, "Y")

    def test_components_sum_to_delta(self):
        profile = self.make_profile(count_driven=False)
        deltas = profile.per_filter_delta()
        for part, delta in zip(decompose_sum_delta(profile), deltas):
            assert part.count_effect + part.mean_effect == pytest.approx(
                delta, abs=1e-6
            )
            assert part.total == pytest.approx(delta, abs=1e-6)

    def test_count_driven_attribute_flagged(self):
        share = count_based_share(self.make_profile(count_driven=True))
        assert share > 0.8

    def test_mean_driven_attribute_not_flagged(self):
        share = count_based_share(self.make_profile(count_driven=False))
        assert share < 0.6

    def test_avg_query_rejected(self):
        profile = self.make_profile(count_driven=False)
        avg_profile = AttributeProfile(
            query=WhyQuery.create(
                Subspace.of(F="f1"), Subspace.of(F="f0"), "Z", Aggregate.AVG
            ),
            attribute=profile.attribute,
            values=profile.values,
            count1=profile.count1,
            sum1=profile.sum1,
            count2=profile.count2,
            sum2=profile.sum2,
        )
        with pytest.raises(ExplanationError):
            decompose_sum_delta(avg_profile)

    def test_filter_share_bounds(self):
        for part in decompose_sum_delta(self.make_profile(count_driven=True)):
            assert 0.0 <= part.count_share <= 1.0
