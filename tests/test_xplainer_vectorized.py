"""Parity suite for the vectorized online XPlainer.

Three layers of guarantees, each against an executable reference:

* the batched Δ kernels (``delta_without_many`` / ``delta_of_many`` /
  ``delta_from_stats``) agree with the scalar ``delta_without`` /
  ``delta_of`` probes on hypothesis-generated profiles;
* the vectorized brute/sum/avg searches return identical
  ``AttributeExplanation``s (same predicate, same contingency, scores to
  1e-9) to the pre-refactor implementations preserved in
  :mod:`repro.core.xplainer_scalar`, across SUM/COUNT/AVG;
* :class:`~repro.data.query.QueryWorkspace` builds bit-identical profiles
  to ``AttributeProfile.build`` and its session memoization never changes
  an answer.

Measure values are drawn integer-valued so every sufficient-statistic sum
is exact in float64: the scalar and matmul summation orders then agree
bit-for-bit and predicate/contingency equality is a hard assertion, not a
tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import xplainer_scalar as scalar
from repro.core.session import ExplainSession
from repro.core.model import fit_model
from repro.core.xplainer import (
    avg_search,
    brute_force_search,
    exact_responsibility,
    explain_attribute,
    sum_search,
)
from repro.data import (
    Aggregate,
    AttributeProfile,
    QueryWorkspace,
    Subspace,
    Table,
    WhyQuery,
)
from repro.datasets import generate_syn_b
from repro.errors import ExplanationError

AGGREGATES = (Aggregate.SUM, Aggregate.COUNT, Aggregate.AVG)


# ---------------------------------------------------------------------------
# Profile / table generators
# ---------------------------------------------------------------------------


@st.composite
def random_profiles(draw):
    """A directly-constructed AttributeProfile with integer-exact stats."""
    m = draw(st.integers(min_value=1, max_value=7))
    agg = draw(st.sampled_from(AGGREGATES))
    counts = st.lists(
        st.integers(min_value=0, max_value=25), min_size=m, max_size=m
    )
    count1 = np.array(draw(counts), dtype=np.float64)
    count2 = np.array(draw(counts), dtype=np.float64)
    # Every retained filter has rows in at least one sibling (build() drops
    # the rest), and a filter with no rows carries no measure mass.
    empty = (count1 + count2) == 0
    count1[empty] = 1.0
    sums = st.lists(
        st.integers(min_value=-50, max_value=120), min_size=m, max_size=m
    )
    sum1 = np.array(draw(sums), dtype=np.float64) * (count1 > 0)
    sum2 = np.array(draw(sums), dtype=np.float64) * (count2 > 0)
    query = WhyQuery(Subspace.of(X="a"), Subspace.of(X="b"), "Z", agg)
    return AttributeProfile(
        query=query,
        attribute="Y",
        values=tuple(f"v{i}" for i in range(m)),
        count1=count1,
        sum1=sum1,
        count2=count2,
        sum2=sum2,
    )


def integer_case(agg, seed, m=7, n=600):
    """Random table whose measure is integer-valued (exact float sums)."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=n)
    y = rng.integers(0, m, size=n)
    shift = rng.integers(0, 8, size=m)
    z = (rng.integers(0, 10, size=n) + shift[y] * (x == 1)).astype(float)
    table = Table.from_columns(
        {
            "X": [f"x{v}" for v in x],
            "Y": [f"y{v}" for v in y],
            "Z": z.tolist(),
        }
    )
    query = WhyQuery.create(
        Subspace.of(X="x1"), Subspace.of(X="x0"), "Z", agg
    ).oriented(table)
    return table, query


def search_setup(agg, seed):
    table, query = integer_case(agg, seed)
    profile = AttributeProfile.build(table, query, "Y")
    delta = query.delta(table)
    if delta <= 0:
        pytest.skip("degenerate draw")
    return profile, 0.05 * delta, 1.0 / profile.n_filters


def assert_same_explanation(got, want):
    assert (got is None) == (want is None)
    if got is None:
        return
    assert got.attribute == want.attribute
    assert got.predicate == want.predicate
    assert got.contingency == want.contingency
    assert got.method == want.method
    assert got.responsibility == pytest.approx(want.responsibility, abs=1e-9)
    assert got.score == pytest.approx(want.score, abs=1e-9)


# ---------------------------------------------------------------------------
# Batched Δ kernels ≡ scalar probes
# ---------------------------------------------------------------------------


class TestBatchedKernels:
    @given(profile=random_profiles())
    @settings(max_examples=80, deadline=None)
    def test_delta_without_many_matches_scalar(self, profile):
        m = profile.n_filters
        bits = np.arange(1 << m, dtype=np.int64)
        masks = (bits[:, None] >> np.arange(m)[None, :]) & 1 == 1
        batched = profile.delta_without_many(masks)
        for row in range(1 << m):
            assert batched[row] == pytest.approx(
                profile.delta_without(masks[row]), abs=1e-9
            )

    @given(profile=random_profiles())
    @settings(max_examples=80, deadline=None)
    def test_delta_of_many_matches_scalar(self, profile):
        m = profile.n_filters
        bits = np.arange(1 << m, dtype=np.int64)
        masks = (bits[:, None] >> np.arange(m)[None, :]) & 1 == 1
        batched = profile.delta_of_many(masks)
        for row in range(1 << m):
            assert batched[row] == pytest.approx(
                profile.delta_of(masks[row]), abs=1e-9
            )
        assert batched[0] == 0.0  # empty selection stays exactly 0

    @given(profile=random_profiles())
    @settings(max_examples=80, deadline=None)
    def test_per_filter_delta_matches_scalar_loop(self, profile):
        vectorized = profile.per_filter_delta()
        reference = scalar.per_filter_delta_scalar(profile)
        assert np.array_equal(vectorized, reference)

    @given(profile=random_profiles())
    @settings(max_examples=40, deadline=None)
    def test_delta_from_stats_composes_with_totals(self, profile):
        # totals − (mask @ stats) fed back through delta_from_stats is the
        # kernel delta_without_many is built from.
        mask = np.zeros((1, profile.n_filters), dtype=bool)
        kept = profile.stats_totals()[None, :]
        assert profile.delta_from_stats(kept)[0] == pytest.approx(
            profile.delta_full(), abs=1e-9
        )
        assert profile.delta_without_many(mask)[0] == pytest.approx(
            profile.delta_full(), abs=1e-9
        )


# ---------------------------------------------------------------------------
# Vectorized searches ≡ pre-refactor implementations
# ---------------------------------------------------------------------------


class TestSearchParity:
    @pytest.mark.parametrize("agg", AGGREGATES)
    @pytest.mark.parametrize("seed", range(8))
    def test_brute_force_parity(self, agg, seed):
        profile, epsilon, sigma = search_setup(agg, seed)
        got = brute_force_search(profile, epsilon, sigma)
        want = scalar.brute_force_search_scalar(profile, epsilon, sigma)
        assert_same_explanation(got, want)

    @pytest.mark.parametrize("agg", (Aggregate.SUM, Aggregate.COUNT))
    @pytest.mark.parametrize("seed", range(8))
    def test_sum_search_parity(self, agg, seed):
        profile, epsilon, sigma = search_setup(agg, seed)
        got = sum_search(profile, epsilon, sigma)
        want = scalar.sum_search_scalar(profile, epsilon, sigma)
        assert_same_explanation(got, want)

    @pytest.mark.parametrize("homogeneous", (False, True))
    @pytest.mark.parametrize("seed", range(8))
    def test_avg_search_parity(self, homogeneous, seed):
        profile, epsilon, sigma = search_setup(Aggregate.AVG, seed)
        got = avg_search(profile, epsilon, sigma, homogeneous=homogeneous)
        want = scalar.avg_search_scalar(
            profile, epsilon, sigma, homogeneous=homogeneous
        )
        assert_same_explanation(got, want)

    @pytest.mark.parametrize("agg", AGGREGATES)
    @pytest.mark.parametrize("seed", range(4))
    def test_exact_responsibility_parity(self, agg, seed):
        profile, epsilon, _ = search_setup(agg, seed)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            selected = rng.random(profile.n_filters) < 0.5
            if not selected.any():
                continue
            rho_v, gamma_v = exact_responsibility(profile, selected, epsilon)
            rho_s, gamma_s = scalar.exact_responsibility_scalar(
                profile, selected, epsilon
            )
            assert rho_v == pytest.approx(rho_s, abs=1e-9)
            assert (gamma_v is None) == (gamma_s is None)
            if gamma_v is not None:
                assert np.array_equal(gamma_v, gamma_s)
                assert np.issubdtype(gamma_v.dtype, np.integer)


class TestSumSearchEmptyGammaDtype:
    def test_setdiff_keeps_integer_dtype_when_empty(self):
        """Regression: the old ``np.array([i for i in pc if i not in ...])``
        produced a float64 empty array for Γ = ∅; ``np.setdiff1d`` keeps an
        integer dtype usable as an index."""
        pc_indices = np.array([3, 1, 4], dtype=np.int64)
        empty = np.setdiff1d(pc_indices, pc_indices)
        assert empty.size == 0
        assert np.issubdtype(empty.dtype, np.integer)
        selected = np.zeros(5, dtype=bool)
        selected[empty] = True  # float64 empty would be rejected as an index
        assert not selected.any()

    def test_full_canonical_optimum_has_no_contingency(self):
        """End-to-end: when the whole canonical predicate is the optimum the
        Γ construction hits the empty edge and must yield None."""
        query = WhyQuery(Subspace.of(X="a"), Subspace.of(X="b"), "Z", Aggregate.SUM)
        profile = AttributeProfile(
            query=query,
            attribute="Y",
            values=("v0", "v1"),
            count1=np.array([5.0, 5.0]),
            sum1=np.array([15.0, 15.0]),
            count2=np.array([5.0, 5.0]),
            sum2=np.array([5.0, 5.0]),
        )
        found = sum_search(profile, epsilon=1.0, sigma=0.1)
        assert found is not None
        assert found.contingency is None
        assert found.responsibility == 1.0
        reference = scalar.sum_search_scalar(profile, epsilon=1.0, sigma=0.1)
        assert_same_explanation(found, reference)


# ---------------------------------------------------------------------------
# QueryWorkspace
# ---------------------------------------------------------------------------


class TestQueryWorkspace:
    @pytest.mark.parametrize("agg", AGGREGATES)
    def test_profiles_bit_identical_to_build(self, agg):
        table, query = integer_case(agg, seed=3)
        workspace = QueryWorkspace(table, query)
        direct = AttributeProfile.build(table, query, "Y")
        built = workspace.profile("Y")
        assert built.values == direct.values
        for name in ("count1", "sum1", "count2", "sum2"):
            assert np.array_equal(getattr(built, name), getattr(direct, name))
        assert workspace.delta == query.delta(table)

    def test_profile_cached_per_attribute(self):
        table, query = integer_case(Aggregate.AVG, seed=4)
        workspace = QueryWorkspace(table, query)
        assert workspace.profile("Y") is workspace.profile("Y")
        assert set(workspace.build_profiles(["Y"])) == {"Y"}

    def test_measure_as_attribute_rejected(self):
        table, query = integer_case(Aggregate.AVG, seed=4)
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            QueryWorkspace(table, query).profile("Z")

    def test_oriented_swaps_siblings_and_negates_delta(self):
        table, query = integer_case(Aggregate.AVG, seed=5)
        reversed_query = WhyQuery(query.s2, query.s1, query.measure, query.agg)
        workspace = QueryWorkspace(table, reversed_query)
        assert workspace.delta <= 0
        oriented = workspace.oriented()
        assert oriented.query == query
        assert oriented.delta == -workspace.delta
        assert oriented._rows1 is workspace._rows2  # arrays shared, swapped
        # an already-oriented workspace is returned as-is
        assert oriented.oriented() is oriented

    @pytest.mark.parametrize("agg", AGGREGATES)
    def test_explain_attribute_with_workspace_identical(self, agg):
        table, query = integer_case(agg, seed=6)
        workspace = QueryWorkspace(table, query)
        with_ws = explain_attribute(table, query, "Y", workspace=workspace)
        without = explain_attribute(table, query, "Y")
        assert_same_explanation(with_ws, without)

    def test_workspace_query_mismatch_raises(self):
        table, query = integer_case(Aggregate.AVG, seed=6)
        other = WhyQuery(query.s2, query.s1, query.measure, query.agg)
        workspace = QueryWorkspace(table, other)
        with pytest.raises(ExplanationError):
            explain_attribute(table, query, "Y", workspace=workspace)


# ---------------------------------------------------------------------------
# Session-level workspace memoization
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def serving_case():
    case = generate_syn_b(n_rows=2500, seed=13)
    model = fit_model(case.table, measure_bins=4)
    return case, model


def report_signature(report):
    return [
        (e.attribute, e.predicate, e.contingency, round(e.score, 12), e.type)
        for e in report.explanations
    ]


class TestSessionWorkspaceCache:
    def test_repeat_queries_hit_workspace_cache(self, serving_case):
        case, model = serving_case
        session = ExplainSession(model, case.table)
        session.explain(case.query)
        assert session.stats.workspace_misses >= 1
        hits_before = session.stats.workspace_hits
        session.explain(case.query)
        assert session.stats.workspace_hits > hits_before
        assert session.cache_info()["workspace_entries"] >= 1

    def test_disabled_cache_gives_identical_reports(self, serving_case):
        case, model = serving_case
        cached = ExplainSession(model, case.table)
        uncached = ExplainSession(model, case.table, workspace_cache=0)
        reversed_query = WhyQuery(
            case.query.s2, case.query.s1, case.query.measure, case.query.agg
        )
        sum_query = WhyQuery.create(
            case.query.s1, case.query.s2, case.query.measure, Aggregate.SUM
        )
        for query in (case.query, case.query, reversed_query, sum_query):
            a = cached.explain(query)
            b = uncached.explain(query)
            assert a.delta == b.delta
            assert report_signature(a) == report_signature(b)
        assert uncached.cache_info()["workspace_entries"] == 0
        assert uncached.stats.workspace_hits == 0

    def test_oriented_workspace_registered_under_oriented_query(self, serving_case):
        case, model = serving_case
        session = ExplainSession(model, case.table)
        reversed_query = WhyQuery(
            case.query.s2, case.query.s1, case.query.measure, case.query.agg
        )
        session.explain(reversed_query)  # Δ < 0: swaps to the oriented form
        hits_before = session.stats.workspace_hits
        session.explain(case.query)  # pre-oriented repeat must hit
        assert session.stats.workspace_hits > hits_before

    def test_repeated_unoriented_query_reuses_profiles(
        self, serving_case, monkeypatch
    ):
        """Regression: a repeated Δ<0 query must reuse the cached oriented
        workspace's profiles, not rebuild them behind a fresh swap."""
        case, model = serving_case
        session = ExplainSession(model, case.table)
        reversed_query = WhyQuery(
            case.query.s2, case.query.s1, case.query.measure, case.query.agg
        )
        builds = {"n": 0}
        original = QueryWorkspace._build_profile

        def counting(self, attribute):
            builds["n"] += 1
            return original(self, attribute)

        monkeypatch.setattr(QueryWorkspace, "_build_profile", counting)
        session.explain(reversed_query)
        first = builds["n"]
        assert first > 0
        session.explain(reversed_query)
        session.explain(case.query)  # the oriented form shares the profiles
        assert builds["n"] == first

    def test_lru_cap_bounds_entries(self, serving_case):
        case, model = serving_case
        session = ExplainSession(model, case.table, workspace_cache=2)
        queries = [
            case.query,
            WhyQuery.create(
                case.query.s1, case.query.s2, case.query.measure, Aggregate.SUM
            ),
            WhyQuery.create(
                case.query.s1, case.query.s2, case.query.measure, Aggregate.COUNT
            ),
        ]
        for query in queries:
            session.explain(query)
        assert session.cache_info()["workspace_entries"] <= 2

    def test_alias_query_swaps_cached_workspace_instead_of_rescanning(
        self, serving_case, monkeypatch
    ):
        """Serving a query and then its sibling-swapped alias must not scan
        the table twice: the alias derives its workspace (and profiles) by
        swapping the cached one's arrays."""
        case, model = serving_case
        session = ExplainSession(model, case.table)
        session.explain(case.query)  # caches the oriented workspace

        scans = {"n": 0}
        original_init = QueryWorkspace.__init__

        def counting_init(self, table, query):
            scans["n"] += 1
            original_init(self, table, query)

        monkeypatch.setattr(QueryWorkspace, "__init__", counting_init)
        reversed_query = WhyQuery(
            case.query.s2, case.query.s1, case.query.measure, case.query.agg
        )
        report = session.explain(reversed_query)
        assert scans["n"] == 0  # swapped(), never a fresh table scan
        assert report.delta == session.explain(case.query).delta

    def test_swapped_workspace_profiles_match_fresh_build(self):
        table, query = integer_case(Aggregate.AVG, seed=9)
        workspace = QueryWorkspace(table, query)
        workspace.profile("Y")
        swapped = workspace.swapped()
        fresh = AttributeProfile.build(table, swapped.query, "Y")
        derived = swapped.profile("Y")
        assert derived.values == fresh.values
        for name in ("count1", "sum1", "count2", "sum2"):
            assert np.array_equal(getattr(derived, name), getattr(fresh, name))

    def test_shard_task_carries_workspace_cache(self, serving_case):
        """Regression: worker sessions built for sharded explain_batch must
        inherit the parent session's workspace_cache bound."""
        case, model = serving_case
        session = ExplainSession(model, case.table, workspace_cache=0)
        task = session._shard_task_for(session.config, "auto")
        assert task.workspace_cache == 0
        worker_session = task.build_state()
        assert worker_session._workspace_cap == 0
        # changing the knob is part of task identity: a new task is built
        session._workspace_cap = 8
        assert session._shard_task_for(session.config, "auto") is not task

    def test_batch_serving_matches_per_query_explains(self, serving_case):
        case, model = serving_case
        batch_session = ExplainSession(model, case.table)
        solo_session = ExplainSession(model, case.table, workspace_cache=0)
        queries = [case.query] * 3 + [
            WhyQuery.create(
                case.query.s1, case.query.s2, case.query.measure, Aggregate.SUM
            )
        ] * 2
        reports = batch_session.explain_batch(queries)
        for query, report in zip(queries, reports):
            assert report_signature(report) == report_signature(
                solo_session.explain(query)
            )
