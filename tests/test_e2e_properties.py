"""Property-based end-to-end harness: fit → save → load → explain_batch.

Hypothesis generates small random tables and query workloads and drives
them through the full pipeline — offline fit, artifact round-trip through
disk, online batch serving — asserting the invariants that must hold for
*any* input, not just the curated datasets:

* the pipeline never crashes on well-formed input;
* reports come back in input order, one per query;
* Δ and every explanation score/responsibility are finite (ρ ∈ [0, 1]),
  and every predicate only names values that exist in the table;
* serial ≡ threaded ≡ process serving (the executor is unobservable);
* the micro-batching service returns exactly the direct batch results.
"""

import asyncio
from pathlib import Path

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core import ExplainSession, XInsightModel, fit_model
from repro.core.reporting import report_to_dict
from repro.data import Subspace, Table, WhyQuery
from repro.errors import ExplanationError
from repro.parallel import ThreadExecutor
from repro.serve import ExplanationService

E2E_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def e2e_cases(draw) -> tuple[Table, list[WhyQuery]]:
    """A random small table plus a workload of valid Why Queries."""
    n_dims = draw(st.integers(2, 3))
    cards = [draw(st.integers(2, 3)) for _ in range(n_dims)]
    n_rows = draw(st.integers(36, 72))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)

    columns: dict = {}
    dims: list[tuple[str, list[str]]] = []
    for i, card in enumerate(cards):
        cats = [f"d{i}v{j}" for j in range(card)]
        # Tile the categories so every one is realized, then shuffle.
        values = [cats[k % card] for k in range(n_rows)]
        rng.shuffle(values)
        columns[f"D{i}"] = values
        dims.append((f"D{i}", cats))
    measure = rng.integers(0, 10, size=n_rows).astype(float)
    measure[0], measure[1] = 0.0, 9.0  # never a constant column
    columns["M"] = measure
    table = Table.from_columns(columns)

    queries: list[WhyQuery] = []
    wanted = draw(st.integers(2, 5))
    for _ in range(3 * wanted):  # some draws are discarded for Δ = 0
        di = draw(st.integers(0, n_dims - 1))
        name, cats = dims[di]
        a = draw(st.sampled_from(cats))
        b = draw(st.sampled_from([c for c in cats if c != a]))
        s1, s2 = {name: a}, {name: b}
        if draw(st.booleans()):  # sometimes pin a shared background filter
            bj = draw(st.integers(0, n_dims - 1))
            if bj != di:
                bg_name, bg_cats = dims[bj]
                shared = draw(st.sampled_from(bg_cats))
                s1[bg_name] = shared
                s2[bg_name] = shared
        agg = draw(st.sampled_from(["AVG", "SUM", "COUNT"]))
        query = WhyQuery.create(Subspace.of(**s1), Subspace.of(**s2), "M", agg)
        # Δ = 0 queries are legitimately unexplainable (a typed
        # ExplanationError, pinned by its own test below); the invariant
        # sweep runs on answerable workloads.
        if abs(query.delta(table)) < 1e-9:
            continue
        queries.append(query)
        if len(queries) == wanted:
            break
    assume(len(queries) >= 2)
    if draw(st.booleans()):  # repeated queries exercise the memo caches
        queries = queries + queries[:2]
    return table, queries


def fit_save_load(table: Table, tmp: Path) -> XInsightModel:
    """The full offline round trip: fit, persist, reload from disk."""
    path = tmp / "model.json"
    fit_model(table, measure_bins=3).save(path)
    return XInsightModel.load(path)


def check_report_invariants(reports, queries, table: Table) -> None:
    assert len(reports) == len(queries)
    for report, query in zip(reports, queries):
        # Order preserved: report i answers query i (possibly re-oriented
        # so that Δ ≥ 0, which swaps the siblings but nothing else).
        swapped = WhyQuery(query.s2, query.s1, query.measure, query.agg)
        assert report.query in (query, swapped)
        assert report.query.agg is query.agg
        assert np.isfinite(report.delta)
        assert report.delta >= 0  # the serving layer orients every query
        for explanation in report.explanations:
            assert np.isfinite(explanation.score)
            assert np.isfinite(explanation.responsibility)
            assert 0.0 <= explanation.responsibility <= 1.0
            dimension = explanation.predicate.dimension
            assert dimension in table.dimensions
            assert dimension not in query.context.variables
            assert dimension != query.measure
            # Predicates only ever name values that exist in the data.
            assert set(explanation.predicate.values) <= set(
                table.categories(dimension)
            )
            if explanation.contingency is not None:
                assert set(explanation.contingency.values) <= set(
                    table.categories(explanation.contingency.dimension)
                )


class TestEndToEndProperties:
    @E2E_SETTINGS
    @given(case=e2e_cases())
    def test_fit_save_load_explain_batch_invariants(self, case, tmp_path_factory):
        table, queries = case
        tmp = tmp_path_factory.mktemp("e2e")
        model = fit_save_load(table, tmp)
        reports = ExplainSession(model, table).explain_batch(queries)
        check_report_invariants(reports, queries, table)

    @E2E_SETTINGS
    @given(case=e2e_cases())
    def test_serial_equals_threaded(self, case, tmp_path_factory):
        table, queries = case
        tmp = tmp_path_factory.mktemp("e2e-thread")
        model = fit_save_load(table, tmp)
        serial = ExplainSession(model, table).explain_batch(queries)
        with ThreadExecutor(2) as executor:
            threaded = ExplainSession(model, table).explain_batch(
                queries, executor=executor
            )
        assert [report_to_dict(r) for r in threaded] == [
            report_to_dict(r) for r in serial
        ]

    @E2E_SETTINGS
    @given(case=e2e_cases())
    def test_service_equals_direct_batch(self, case, tmp_path_factory):
        table, queries = case
        tmp = tmp_path_factory.mktemp("e2e-serve")
        model = fit_save_load(table, tmp)
        direct = ExplainSession(model, table).explain_batch(queries)

        async def scenario():
            async with ExplanationService(
                model, table, max_batch=4, max_wait_ms=5
            ) as service:
                return await asyncio.gather(
                    *[service.explain(q) for q in queries]
                )

        served = asyncio.run(scenario())
        assert [report_to_dict(r) for r in served] == [
            report_to_dict(r) for r in direct
        ]


def fixed_case() -> tuple[Table, list[WhyQuery]]:
    """One deterministic case of the same shape the strategy generates."""
    rng = np.random.default_rng(7)
    n_rows = 60
    columns: dict = {}
    for i, card in enumerate((3, 2)):
        cats = [f"d{i}v{j}" for j in range(card)]
        values = [cats[k % card] for k in range(n_rows)]
        rng.shuffle(values)
        columns[f"D{i}"] = values
    measure = rng.integers(0, 10, size=n_rows).astype(float)
    measure[0], measure[1] = 0.0, 9.0
    columns["M"] = measure
    table = Table.from_columns(columns)
    queries = [
        WhyQuery.create(
            Subspace.of(D0="d0v0"), Subspace.of(D0="d0v1"), "M", agg
        )
        for agg in ("AVG", "SUM", "COUNT")
    ] + [
        WhyQuery.create(Subspace.of(D1="d1v1"), Subspace.of(D1="d1v0"), "M", "AVG"),
    ]
    return table, queries


class TestUnexplainableQueries:
    """Δ = 0 is a typed outcome, and it is the *same* typed outcome no
    matter which serving surface the query arrives through."""

    def test_zero_delta_same_outcome_direct_and_via_service(self, tmp_path):
        # COUNT over two equal-sized groups: Δ = 0 by construction (D1 is
        # tiled over 60 rows, so both categories hold exactly 30).  The
        # outcome — a typed ExplanationError if any attribute is
        # explainable, an empty report otherwise — must be identical no
        # matter which serving surface the query arrives through.
        table, _ = fixed_case()
        query = WhyQuery.create(
            Subspace.of(D1="d1v0"), Subspace.of(D1="d1v1"), "M", "COUNT"
        )
        assert query.delta(table) == 0
        model = fit_save_load(table, tmp_path)
        try:
            direct = report_to_dict(ExplainSession(model, table).explain(query))
        except ExplanationError as exc:
            direct = ("error", str(exc))

        async def scenario():
            async with ExplanationService(model, table) as service:
                return await asyncio.gather(
                    service.explain(query), return_exceptions=True
                )

        (outcome,) = asyncio.run(scenario())
        if isinstance(outcome, BaseException):
            assert isinstance(outcome, ExplanationError)
            assert direct == ("error", str(outcome))
        else:
            assert report_to_dict(outcome) == direct


class TestProcessParity:
    """Process-pool parity on one fixed case (pools are too slow to spawn
    inside every hypothesis example; the thread sweep runs there)."""

    def test_serial_equals_process(self, tmp_path):
        table, queries = fixed_case()
        model = fit_save_load(table, tmp_path)
        serial = ExplainSession(model, table).explain_batch(queries)
        process = ExplainSession(model, table).explain_batch(
            queries, workers=2, executor=None
        )
        assert [report_to_dict(r) for r in process] == [
            report_to_dict(r) for r in serial
        ]
