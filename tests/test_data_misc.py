"""Tests for aggregates, discretization and CSV I/O."""

import numpy as np
import pytest

from repro.data import Aggregate, Role, Table, discretize, parse_aggregate, read_csv, write_csv
from repro.data.discretize import Bin, equal_frequency_edges, equal_width_edges
from repro.errors import QueryError, SchemaError


class TestAggregate:
    def test_sum(self):
        assert Aggregate.SUM.compute(np.array([1.0, 2.0])) == 3.0

    def test_avg(self):
        assert Aggregate.AVG.compute(np.array([1.0, 3.0])) == 2.0

    def test_count_ignores_values(self):
        assert Aggregate.COUNT.compute(np.array([5.0, 5.0, 5.0])) == 3.0

    def test_empty_selection_is_zero(self):
        empty = np.array([])
        assert Aggregate.AVG.compute(empty) == 0.0
        assert Aggregate.SUM.compute(empty) == 0.0
        assert Aggregate.COUNT.compute(empty) == 0.0

    def test_from_sums_consistent_with_compute(self):
        values = np.array([2.0, 4.0, 6.0])
        for agg in Aggregate:
            assert agg.from_sums(values.sum(), values.size) == pytest.approx(
                agg.compute(values)
            )

    def test_additivity_flags(self):
        assert Aggregate.SUM.is_additive
        assert Aggregate.COUNT.is_additive
        assert not Aggregate.AVG.is_additive

    def test_parse(self):
        assert parse_aggregate("avg") is Aggregate.AVG
        assert parse_aggregate(Aggregate.SUM) is Aggregate.SUM
        with pytest.raises(QueryError):
            parse_aggregate("median")

    def test_parse_non_string_is_typed_error(self):
        # Wire/batch specs can carry any JSON value; a number must produce
        # the typed error, not an AttributeError on .upper().
        with pytest.raises(QueryError):
            parse_aggregate(5)  # type: ignore[arg-type]


class TestDiscretize:
    def test_equal_width_edges_span_range(self):
        edges = equal_width_edges(np.array([0.0, 10.0]), 5)
        assert edges[0] == 0.0 and edges[-1] == 10.0
        assert len(edges) == 6

    def test_equal_width_constant_column(self):
        edges = equal_width_edges(np.array([3.0, 3.0]), 2)
        assert edges[-1] > edges[0]

    def test_equal_frequency_balances_counts(self):
        values = np.arange(100.0)
        edges = equal_frequency_edges(values, 4)
        idx = np.digitize(values, edges[1:-1])
        counts = np.bincount(idx)
        assert counts.max() - counts.min() <= 2

    def test_zero_bins_rejected(self):
        with pytest.raises(SchemaError):
            equal_width_edges(np.array([1.0]), 0)

    def test_discretize_adds_dimension(self):
        t = Table.from_columns({"m": list(np.linspace(0, 1, 50))})
        t2, bins = discretize(t, "m", n_bins=5, method="width")
        assert "m_bin" in t2.schema
        assert t2.schema.role("m_bin") is Role.DIMENSION
        assert len(bins) == 5

    def test_discretize_every_value_lands_in_a_bin(self):
        t = Table.from_columns({"m": [0.0, 0.5, 1.0, 0.99, 0.01]})
        t2, bins = discretize(t, "m", n_bins=3, method="width")
        assert t2.cardinality("m_bin") <= 3

    def test_unknown_method_rejected(self):
        t = Table.from_columns({"m": [1.0, 2.0]})
        with pytest.raises(SchemaError):
            discretize(t, "m", method="magic")

    def test_bin_contains(self):
        b = Bin(0.0, 1.0)
        assert 0.5 in b and 1.0 not in b


class TestCSV:
    def test_roundtrip(self, tmp_path):
        t = Table.from_columns({"d": ["x", "y"], "m": [1.5, 2.5]})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert back.values("d") == ["x", "y"]
        assert back.measure_values("m").tolist() == [1.5, 2.5]

    def test_read_respects_explicit_roles(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("year,m\n2020,1.0\n2021,2.0\n")
        t = read_csv(path, roles={"year": Role.DIMENSION, "m": Role.MEASURE})
        assert t.schema.role("year") is Role.DIMENSION

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "e.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError):
            read_csv(path)

    @pytest.mark.parametrize("cell", ["NaN", "nan", "inf", "-inf", "Infinity"])
    def test_non_finite_cells_fall_back_categorical(self, tmp_path, cell):
        # float() happily parses "NaN"/"inf", but a non-finite measure would
        # poison every aggregate downstream; such columns stay categorical.
        path = tmp_path / "t.csv"
        path.write_text(f"d,m\nx,{cell}\ny,2.0\n")
        t = read_csv(path)
        assert t.schema.role("m") is Role.DIMENSION
        assert t.values("m") == [cell, "2.0"]

    def test_finite_numeric_column_still_becomes_measure(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("d,m\nx,1.0\ny,2.0\n")
        t = read_csv(path)
        assert t.schema.role("m") is Role.MEASURE
