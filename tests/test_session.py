"""ExplainSession: the online serving surface over a fitted model.

Covers the new API contract: sessions are stateless per model (many
sessions share one artifact, nothing mutates it), per-session caches
eliminate repeated graph traversals, ``explain_batch`` preserves order and
equals query-by-query serving, and — unlike the deprecated facade — an
unfitted state is an error, never a silent re-fit.
"""

import warnings

import pytest

from repro.core import (
    ExplainSession,
    XInsight,
    XPlainerConfig,
    fit_model,
)
import repro.core.session as session_mod
from repro.data import Aggregate, Subspace, WhyQuery
from repro.datasets import generate_lungcancer
from repro.errors import ModelError, QueryError


@pytest.fixture(scope="module")
def table():
    return generate_lungcancer(n_rows=3000, seed=0)


@pytest.fixture(scope="module")
def model(table):
    return fit_model(table, measure_bins=3)


@pytest.fixture(scope="module")
def query():
    return WhyQuery.create(
        Subspace.of(Location="A"),
        Subspace.of(Location="B"),
        "LungCancer",
        Aggregate.AVG,
    )


@pytest.fixture()
def session(model, table):
    return ExplainSession(model, table)


class TestSessionBasics:
    def test_explain_matches_facade(self, session, table, query):
        facade = XInsight(table, measure_bins=3).fit()
        assert session.explain(query).explanations == facade.explain(query).explanations

    def test_graph_table_has_bin_companions(self, session):
        assert "LungCancer_bin" in session.graph_table.dimensions
        assert session.node_of("LungCancer") == "LungCancer_bin"

    def test_sessions_share_one_model(self, model, table, query):
        a = ExplainSession(model, table)
        b = ExplainSession(model, table)
        assert a.model is b.model
        assert a.explain(query).explanations == b.explain(query).explanations
        # Per-session caches are independent.
        assert a.stats.queries == 1 and b.stats.queries == 1

    def test_config_default_used_and_overridable(self, model, table, query):
        session = ExplainSession(model, table, config=XPlainerConfig(sigma=0.0))
        base = session.explain(query)
        override = session.explain(query, config=XPlainerConfig(epsilon_fraction=0.9))
        assert isinstance(base.explanations, list)
        assert isinstance(override.explanations, list)

    def test_transform_missing_measure_is_model_error(self, model, table):
        with pytest.raises(ModelError, match="LungCancer"):
            ExplainSession(model, table.drop_columns(["LungCancer"]))


class TestSessionCaching:
    def test_repeated_queries_hit_translation_cache(self, session, query):
        session.explain(query)
        assert session.stats.translation_misses == 1
        session.explain(query)
        session.explain(query)
        assert session.stats.translation_misses == 1
        assert session.stats.translation_hits == 2

    def test_translation_traversals_run_once_per_context(
        self, session, query, monkeypatch
    ):
        calls = {"translate": 0}
        real = session_mod.translate

        def counting(*args, **kwargs):
            calls["translate"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(session_mod, "translate", counting)
        for _ in range(5):
            session.explain(query)
        assert calls["translate"] == 1

    def test_homogeneity_memoized_across_queries(self, session, query):
        session.explain(query)
        misses = session.stats.homogeneity_misses
        assert misses > 0
        session.explain(query)
        assert session.stats.homogeneity_misses == misses
        assert session.stats.homogeneity_hits >= misses

    def test_distinct_contexts_are_distinct_entries(self, session, query):
        session.explain(query)
        sum_query = WhyQuery.create(query.s1, query.s2, query.measure, Aggregate.SUM)
        session.explain(sum_query)
        # Same (measure, context): SUM vs AVG shares the graph-side work.
        assert session.cache_info()["translation_entries"] == 1

    def test_cached_translations_are_copies(self, session, query):
        first = session.explain(query).translations
        first.clear()
        assert session.explain(query).translations

    def test_cache_info_shape(self, session, query):
        session.explain(query)
        info = session.cache_info()
        assert {
            "queries",
            "translation_hits",
            "translation_misses",
            "homogeneity_hits",
            "homogeneity_misses",
            "translation_entries",
            "homogeneity_entries",
        } <= set(info)
        assert info["queries"] == 1


class TestExplainBatch:
    def test_batch_equals_sequential_and_preserves_order(
        self, model, table, query
    ):
        queries = [
            query,
            WhyQuery.create(query.s2, query.s1, query.measure, Aggregate.AVG),
            WhyQuery.create(query.s1, query.s2, query.measure, Aggregate.SUM),
        ] * 4
        batch = ExplainSession(model, table).explain_batch(queries)
        sequential_session = ExplainSession(model, table)
        sequential = [sequential_session.explain(q) for q in queries]
        assert len(batch) == len(queries)
        for got, want in zip(batch, sequential):
            assert got.explanations == want.explanations
            assert got.delta == want.delta

    def test_batch_shares_graph_work(self, session, query):
        session.explain_batch([query] * 10)
        assert session.stats.queries == 10
        assert session.stats.translation_misses == 1
        assert session.stats.translation_hits == 9


class TestUnfittedIsAnError:
    """Satellite: the new surface refuses to serve unfitted; only the
    deprecated facade keeps the implicit-fit convenience."""

    def test_facade_session_property_raises_before_fit(self, table):
        with pytest.raises(QueryError, match="fit"):
            XInsight(table).session

    def test_facade_model_property_raises_before_fit(self, table):
        with pytest.raises(QueryError, match="fit"):
            XInsight(table).model

    def test_facade_explain_batch_raises_before_fit(self, table, query):
        with pytest.raises(QueryError, match="fit"):
            XInsight(table).explain_batch([query])

    def test_facade_implicit_fit_is_deprecated_but_works(self, table, query):
        engine = XInsight(table, measure_bins=3)
        with pytest.warns(DeprecationWarning, match="unfitted"):
            report = engine.explain(query)
        assert report.explanations
        # Once fitted, no further warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.explain(query)

    def test_explicit_fit_never_warns(self, table, query):
        engine = XInsight(table, measure_bins=3).fit()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            engine.explain(query)
