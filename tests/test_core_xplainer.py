"""Tests for XPlainer: W-causality, the SUM/AVG fast paths vs brute force.

The central properties (Props. 3.2–3.3, Thms. 3.3–3.4):

* the SUM fast path returns the brute-force optimum's predicate;
* every subset of the canonical predicate is an actual cause with its
  complement a valid contingency;
* the responsibility approximation stays within the Thm. 3.4 bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    XPlainerConfig,
    avg_search,
    brute_force_search,
    canonical_predicate_sum,
    exact_responsibility,
    explain_attribute,
    sum_search,
)
from repro.data import Aggregate, AttributeProfile, Subspace, Table, WhyQuery
from repro.datasets import generate_syn_b
from repro.errors import ExplanationError


def profile_for(case, attribute="Y"):
    return AttributeProfile.build(case.table, case.query, attribute)


class TestSynBGroundTruth:
    def test_sum_search_recovers_truth(self):
        case = generate_syn_b(n_rows=20_000, agg=Aggregate.SUM, seed=1)
        found = explain_attribute(case.table, case.query, "Y")
        assert found is not None
        assert case.f1_against_truth(found.predicate) == 1.0

    def test_avg_search_recovers_truth(self):
        case = generate_syn_b(n_rows=20_000, agg=Aggregate.AVG, seed=2)
        found = explain_attribute(case.table, case.query, "Y")
        assert found is not None
        assert case.f1_against_truth(found.predicate) == 1.0

    def test_homogeneity_pruning_agrees_on_homogeneous_attribute(self):
        """Def. 3.7 / Prop. 3.4: on an attribute independent of the
        foreground (truly homogeneous siblings) the pruned and unpruned
        searches return the same explanation."""
        rng = np.random.default_rng(11)
        n = 20_000
        x = rng.integers(0, 2, size=n)
        w = rng.integers(0, 6, size=n)  # W ⫫ X: homogeneous attribute
        z = rng.normal(10.0, 2.0, size=n) + 8.0 * (w < 2) * x + 1.5 * (w < 2)
        table = Table.from_columns(
            {
                "X": [f"x{v}" for v in x],
                "W": [f"w{v}" for v in w],
                "Z": z.tolist(),
            }
        )
        query = WhyQuery.create(
            Subspace.of(X="x1"), Subspace.of(X="x0"), "Z", Aggregate.AVG
        )
        plain = explain_attribute(table, query, "W", homogeneous=False)
        pruned = explain_attribute(table, query, "W", homogeneous=True)
        assert plain is not None and pruned is not None
        assert plain.predicate.values == pruned.predicate.values

    def test_high_responsibility_for_true_cause(self):
        case = generate_syn_b(n_rows=20_000, seed=4)
        found = explain_attribute(case.table, case.query, "Y")
        assert found is not None
        assert found.responsibility > 0.6

    def test_invalid_query_raises(self):
        case = generate_syn_b(n_rows=5000, seed=5)
        flat = WhyQuery.create(
            Subspace.of(X="x1"), Subspace.of(X="x0"), "Z", Aggregate.COUNT
        ).oriented(case.table)
        # The COUNT difference between the X groups is sampling noise; an
        # explicit ε above it means there is nothing to explain (Def. 3.4
        # requires Δ(D) > ε).
        with pytest.raises(ExplanationError):
            explain_attribute(
                case.table, flat, "Y", config=XPlainerConfig(epsilon=1e6)
            )


def tiny_case(agg, seed=0, m=5, n=400):
    """Small random dataset where brute force is feasible."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2, size=n)
    y = rng.integers(0, m, size=n)
    shift = rng.uniform(0.0, 4.0, size=m)
    z = rng.normal(5.0, 1.0, size=n) + shift[y] * (x == 1)
    table = Table.from_columns(
        {
            "X": [f"x{v}" for v in x],
            "Y": [f"y{v}" for v in y],
            "Z": z.tolist(),
        }
    )
    query = WhyQuery.create(Subspace.of(X="x1"), Subspace.of(X="x0"), "Z", agg)
    return table, query.oriented(table)


class TestSumAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_same_optimal_predicate(self, seed):
        table, query = tiny_case(Aggregate.SUM, seed=seed)
        profile = AttributeProfile.build(table, query, "Y")
        delta = query.delta(table)
        if delta <= 0:
            pytest.skip("degenerate draw")
        epsilon = 0.05 * delta
        sigma = 1.0 / profile.n_filters
        fast = sum_search(profile, epsilon, sigma)
        brute = brute_force_search(profile, epsilon, sigma)
        if brute is None:
            assert fast is None
            return
        assert fast is not None
        # Same objective value (the argmax may tie); scores use different
        # responsibility estimates, so compare via exact responsibility.
        rho_fast, _ = exact_responsibility(
            profile, profile.selection_of(fast.predicate), epsilon
        )
        score_fast = rho_fast - sigma * len(fast.predicate)
        assert score_fast == pytest.approx(brute.score, abs=0.08)

    def test_counterfactual_cause_gets_rho_one(self):
        case = generate_syn_b(n_rows=10_000, agg=Aggregate.SUM, seed=6)
        profile = profile_for(case)
        delta = case.query.delta(case.table)
        canonical = canonical_predicate_sum(profile, 0.05 * delta)
        assert canonical is not None
        pc_indices, tau = canonical
        selected = np.zeros(profile.n_filters, dtype=bool)
        selected[pc_indices] = True
        rho, gamma = exact_responsibility(profile, selected, 0.05 * delta)
        assert rho == 1.0 and gamma is not None and gamma.size == 0


class TestTheorem33:
    def test_subsets_of_canonical_predicate_are_actual_causes(self):
        """Thm. 3.3: ∀P ⊂ P_C, P is an actual cause with P_C−P a valid
        contingency (checked exhaustively on SYN-B)."""
        case = generate_syn_b(n_rows=10_000, agg=Aggregate.SUM, seed=7)
        profile = profile_for(case)
        delta = case.query.delta(case.table)
        epsilon = 0.05 * delta
        canonical = canonical_predicate_sum(profile, epsilon)
        assert canonical is not None
        pc_indices, tau = canonical
        m = profile.n_filters
        for bits in range(1, 1 << len(pc_indices)):
            chosen = [pc_indices[i] for i in range(len(pc_indices)) if (bits >> i) & 1]
            if len(chosen) == len(pc_indices):
                continue
            p_mask = np.zeros(m, dtype=bool)
            p_mask[chosen] = True
            gamma_mask = np.zeros(m, dtype=bool)
            gamma_mask[[i for i in pc_indices if not p_mask[i]]] = True
            # Γ is a valid contingency: Δ(D−D_Γ) > ε ≥ Δ(D−D_Γ−D_P).
            assert profile.delta_without(gamma_mask) > epsilon
            assert profile.delta_without(gamma_mask | p_mask) <= epsilon


class TestTheorem34Bounds:
    def test_responsibility_approximation_within_bounds(self):
        case = generate_syn_b(n_rows=10_000, agg=Aggregate.SUM, seed=8)
        profile = profile_for(case)
        delta = case.query.delta(case.table)
        epsilon = 0.05 * delta
        canonical = canonical_predicate_sum(profile, epsilon)
        assert canonical is not None
        pc_indices, tau = canonical
        deltas = profile.per_filter_delta()
        t = tau / delta
        m = profile.n_filters
        # Check each strict single-filter subset of P_C.
        for idx in pc_indices[:-1]:
            p_mask = np.zeros(m, dtype=bool)
            p_mask[idx] = True
            rho, _ = exact_responsibility(profile, p_mask, epsilon)
            d_p = deltas[idx] / delta
            lower = 1.0 / (1.0 + t - d_p)
            upper = 1.0 / (2.0 - d_p - epsilon / delta)
            assert rho >= lower - 1e-9
            assert rho <= upper + 1e-9


class TestAvgAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_greedy_close_to_optimum(self, seed):
        table, query = tiny_case(Aggregate.AVG, seed=seed)
        profile = AttributeProfile.build(table, query, "Y")
        delta = query.delta(table)
        if delta <= 0:
            pytest.skip("degenerate draw")
        epsilon = 0.1 * delta
        sigma = 1.0 / profile.n_filters
        greedy = avg_search(profile, epsilon, sigma)
        brute = brute_force_search(profile, epsilon, sigma)
        if brute is None:
            assert greedy is None
            return
        if greedy is None:
            pytest.skip("greedy ⊥ on this draw (allowed: heuristic)")
        rho_greedy, _ = exact_responsibility(
            profile, profile.selection_of(greedy.predicate), epsilon
        )
        score_greedy = rho_greedy - sigma * len(greedy.predicate)
        # Heuristic: within a modest gap of the optimum ("moderated FP&FN").
        assert score_greedy >= brute.score - 0.35

    def test_returns_none_when_threshold_unreachable(self):
        table, query = tiny_case(Aggregate.AVG, seed=1)
        profile = AttributeProfile.build(table, query, "Y")
        # ε below any achievable residual difference: impossible.
        result = avg_search(profile, epsilon=-10.0, sigma=0.2)
        assert result is None


class TestConfig:
    def test_epsilon_fraction_resolution(self):
        cfg = XPlainerConfig(epsilon_fraction=0.2)
        assert cfg.resolve_epsilon(10.0) == pytest.approx(2.0)

    def test_explicit_epsilon_wins(self):
        cfg = XPlainerConfig(epsilon=0.5, epsilon_fraction=0.2)
        assert cfg.resolve_epsilon(10.0) == 0.5

    def test_sigma_default_is_one_over_m(self):
        assert XPlainerConfig().resolve_sigma(4) == pytest.approx(0.25)

    def test_brute_force_limit_enforced(self):
        case = generate_syn_b(cardinality=20, n_rows=2000, seed=9)
        with pytest.raises(ExplanationError):
            explain_attribute(
                case.table,
                case.query,
                "Y",
                config=XPlainerConfig(brute_force_limit=10),
                method="brute",
            )

    def test_unknown_method_rejected(self):
        case = generate_syn_b(n_rows=2000, seed=10)
        with pytest.raises(ExplanationError):
            explain_attribute(case.table, case.query, "Y", method="magic")


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=25, deadline=None)
def test_sum_fast_path_filters_subset_of_canonical(seed):
    """Prop. 3.3: the fast-path optimum always sits inside P_C."""
    table, query = tiny_case(Aggregate.SUM, seed=seed)
    profile = AttributeProfile.build(table, query, "Y")
    delta = query.delta(table)
    if delta <= 0:
        return
    epsilon = 0.05 * delta
    canonical = canonical_predicate_sum(profile, epsilon)
    result = sum_search(profile, epsilon, 1.0 / profile.n_filters)
    if result is None:
        assert canonical is None
        return
    assert canonical is not None
    pc_values = {profile.values[i] for i in canonical[0]}
    assert set(result.predicate.values) <= pc_values
