"""Tests for the extension features: background knowledge, change
explanation, multi-dimensional explanations, permutation CI test."""

import numpy as np
import pytest

from repro.core import (
    ChangeDirection,
    XInsight,
    explain_change,
    explain_conjunction,
    product_attribute,
    xlearner,
)
from repro.data import Aggregate, Subspace, Table, WhyQuery
from repro.datasets import generate_cityinfo, generate_lungcancer
from repro.discovery import BackgroundKnowledge, apply_background_knowledge
from repro.errors import DiscoveryError, ExplanationError, QueryError
from repro.graph import MixedGraph
from repro.independence import ChiSquaredTest, PermutationCITest


class TestBackgroundKnowledge:
    def test_required_edge_oriented(self):
        g = MixedGraph(["x", "y"])
        g.add_edge("x", "y")  # o-o
        out = apply_background_knowledge(
            g, BackgroundKnowledge.of(required=[("x", "y")])
        )
        assert out.is_parent("x", "y")

    def test_required_edge_added_when_missing(self):
        g = MixedGraph(["x", "y"])
        out = apply_background_knowledge(
            g, BackgroundKnowledge.of(required=[("x", "y")])
        )
        assert out.is_parent("x", "y")

    def test_forbidden_edge_removed(self):
        g = MixedGraph(["x", "y"])
        g.add_edge("x", "y")
        out = apply_background_knowledge(
            g, BackgroundKnowledge.of(forbidden=[("x", "y")])
        )
        assert not out.has_edge("x", "y")

    def test_original_graph_untouched(self):
        g = MixedGraph(["x", "y"])
        g.add_edge("x", "y")
        apply_background_knowledge(g, BackgroundKnowledge.of(forbidden=[("x", "y")]))
        assert g.has_edge("x", "y")

    def test_conflicting_knowledge_rejected(self):
        with pytest.raises(DiscoveryError):
            BackgroundKnowledge.of(required=[("x", "y")], forbidden=[("y", "x")])
        with pytest.raises(DiscoveryError):
            BackgroundKnowledge.of(required=[("x", "y"), ("y", "x")])

    def test_unknown_node_rejected(self):
        g = MixedGraph(["x"])
        with pytest.raises(DiscoveryError):
            apply_background_knowledge(
                g, BackgroundKnowledge.of(required=[("x", "ghost")])
            )

    def test_xlearner_accepts_knowledge(self):
        table = generate_cityinfo(n_rows=400, seed=0)
        knowledge = BackgroundKnowledge.of(forbidden=[("City", "State")])
        result = xlearner(table, knowledge=knowledge)
        assert not result.pag.has_edge("City", "State")


class TestExplainChange:
    @pytest.fixture(scope="class")
    def engine(self):
        table = generate_lungcancer(n_rows=8000, seed=0)
        return XInsight(table, measure_bins=3).fit()

    def test_increase_detected_and_explained(self, engine):
        report = explain_change(engine, "Location", before="B", after="A", measure="LungCancer")
        assert report.direction is ChangeDirection.INCREASE
        assert report.magnitude > 0
        assert any(e.attribute == "Smoking" for e in report.report.explanations)

    def test_decrease_is_symmetric(self, engine):
        report = explain_change(engine, "Location", before="A", after="B", measure="LungCancer")
        assert report.direction is ChangeDirection.DECREASE

    def test_flat_change_short_circuits(self, engine):
        report = explain_change(
            engine,
            "Location",
            before="B",
            after="A",
            measure="LungCancer",
            flat_fraction=10.0,
        )
        assert report.direction is ChangeDirection.FLAT
        assert "no material change" in report.headline()

    def test_same_slice_rejected(self, engine):
        with pytest.raises(QueryError):
            explain_change(engine, "Location", before="A", after="A", measure="LungCancer")

    def test_headline_mentions_top_factor(self, engine):
        report = explain_change(engine, "Location", before="B", after="A", measure="LungCancer")
        assert "top factor" in report.headline()


class TestMultiDimensional:
    def make_case(self):
        """Difference exists only where BOTH x-attributes hit: a genuinely
        two-dimensional explanation."""
        rng = np.random.default_rng(0)
        n = 12_000
        f = rng.integers(0, 2, size=n)
        a = rng.choice(["a0", "a1", "a2"], size=n)
        b = rng.choice(["b0", "b1", "b2"], size=n)
        hit = (a == "a1") & (b == "b2") & (f == 1)
        z = rng.normal(10, 1, size=n) + 25.0 * hit
        table = Table.from_columns(
            {"F": [f"f{v}" for v in f], "A": a.tolist(), "B": b.tolist(), "Z": z}
        )
        query = WhyQuery.create(
            Subspace.of(F="f1"), Subspace.of(F="f0"), "Z", Aggregate.AVG
        )
        return table, query

    def test_product_attribute_created(self):
        table, _ = self.make_case()
        augmented = product_attribute(table, "A", "B")
        assert "A×B" in augmented.schema
        assert augmented.cardinality("A×B") == 9

    def test_same_attribute_rejected(self):
        table, _ = self.make_case()
        with pytest.raises(ExplanationError):
            product_attribute(table, "A", "A")

    def test_conjunction_found(self):
        table, query = self.make_case()
        result = explain_conjunction(table, query, "A", "B")
        assert result is not None
        assert ("a1", "b2") in result.cells
        assert result.responsibility > 0.5

    def test_projection_to_predicates(self):
        table, query = self.make_case()
        result = explain_conjunction(table, query, "A", "B")
        first, second = result.as_predicates()
        assert "a1" in first.values
        assert "b2" in second.values


class TestPermutationCITest:
    def test_detects_dependence(self):
        rng = np.random.default_rng(0)
        n = 400
        x = rng.integers(0, 2, size=n)
        y = np.where(rng.random(n) < 0.85, x, 1 - x)
        t = Table.from_columns(
            {"x": [str(v) for v in x], "y": [str(v) for v in y]}
        )
        test = PermutationCITest(t, n_permutations=100, seed=1)
        assert not test.independent("x", "y")

    def test_accepts_independence(self):
        rng = np.random.default_rng(1)
        n = 400
        t = Table.from_columns(
            {
                "x": [str(v) for v in rng.integers(0, 2, n)],
                "y": [str(v) for v in rng.integers(0, 2, n)],
            }
        )
        test = PermutationCITest(t, alpha=0.01, n_permutations=100, seed=2)
        assert test.independent("x", "y")

    def test_conditional_blocking(self):
        rng = np.random.default_rng(2)
        n = 1200
        m = rng.integers(0, 2, size=n)
        x = np.where(rng.random(n) < 0.9, m, 1 - m)
        y = np.where(rng.random(n) < 0.9, m, 1 - m)
        t = Table.from_columns(
            {
                "x": [str(v) for v in x],
                "y": [str(v) for v in y],
                "m": [str(v) for v in m],
            }
        )
        test = PermutationCITest(t, alpha=0.01, n_permutations=100, seed=3)
        assert not test.independent("x", "y")
        assert test.independent("x", "y", ["m"])

    def test_agrees_with_chi2_on_large_samples(self):
        rng = np.random.default_rng(3)
        n = 2000
        x = rng.integers(0, 3, size=n)
        y = (x + rng.integers(0, 2, size=n)) % 3
        t = Table.from_columns(
            {"x": [str(v) for v in x], "y": [str(v) for v in y]}
        )
        perm = PermutationCITest(t, n_permutations=60, seed=4)
        chi = ChiSquaredTest(t)
        assert perm.independent("x", "y") == chi.independent("x", "y")
