"""Tests for XTranslator (Table 3) on the Fig. 1 lung-cancer graph."""

import pytest

from repro.core import CausalRole, XDASemantics, translate, translate_variable
from repro.data import Context
from repro.datasets import lungcancer_truth_graph
from repro.errors import QueryError
from repro.graph import Endpoint, MixedGraph


MEASURE = "LungCancer_bin"
CONTEXT = ["Location"]


@pytest.fixture()
def graph():
    return lungcancer_truth_graph(MEASURE)


class TestTable3Rows:
    def test_smoking_is_causal_parent(self, graph):
        t = translate_variable(graph, "Smoking", MEASURE, CONTEXT)
        assert t.semantics is XDASemantics.CAUSAL
        assert t.role is CausalRole.PARENT

    def test_stress_is_causal_ancestor(self, graph):
        t = translate_variable(graph, "Stress", MEASURE, CONTEXT)
        assert t.semantics is XDASemantics.CAUSAL
        assert t.role is CausalRole.ANCESTOR

    def test_surgery_is_non_causal(self, graph):
        t = translate_variable(graph, "Surgery", MEASURE, CONTEXT)
        assert t.semantics is XDASemantics.NON_CAUSAL
        assert t.role is CausalRole.NONE

    def test_survival_is_non_causal(self, graph):
        t = translate_variable(graph, "Survival", MEASURE, CONTEXT)
        assert t.semantics is XDASemantics.NON_CAUSAL

    def test_rule1_pruning_by_m_separation(self):
        # X -> F -> M: X is m-separated from M by F, so no explainability.
        g = MixedGraph(["X", "F", "M"])
        g.add_directed_edge("X", "F")
        g.add_directed_edge("F", "M")
        t = translate_variable(g, "X", "M", ["F"])
        assert t.semantics is XDASemantics.NO_EXPLAINABILITY

    def test_almost_parent_is_causal(self):
        g = MixedGraph(["X", "F", "M"])
        g.add_edge("X", "M", Endpoint.CIRCLE, Endpoint.ARROW)  # X o-> M
        g.add_node("F")
        t = translate_variable(g, "X", "M", [])
        assert t.semantics is XDASemantics.CAUSAL
        assert t.role is CausalRole.ALMOST_PARENT

    def test_almost_ancestor_is_causal(self):
        g = MixedGraph(["X", "W", "M"])
        g.add_edge("X", "W", Endpoint.CIRCLE, Endpoint.ARROW)
        g.add_edge("W", "M", Endpoint.CIRCLE, Endpoint.ARROW)
        t = translate_variable(g, "X", "M", [])
        assert t.role is CausalRole.ALMOST_ANCESTOR

    def test_bidirected_neighbor_is_non_causal(self):
        g = MixedGraph(["X", "M", "F"])
        g.add_bidirected_edge("X", "M")
        t = translate_variable(g, "X", "M", [])
        assert t.semantics is XDASemantics.NON_CAUSAL


class TestConservativePruning:
    def test_circle_paths_are_not_pruned(self):
        # X o-o F o-o M: in some MAG of the class X is d-connected to M
        # given F (F collider), so the conservative check keeps X.
        g = MixedGraph(["X", "F", "M"])
        g.add_edge("X", "F")
        g.add_edge("F", "M")
        t = translate_variable(g, "X", "M", ["F"])
        assert t.semantics is not XDASemantics.NO_EXPLAINABILITY


class TestTranslateAll:
    def test_fig1_classification(self, graph):
        ctx = Context(foreground="Location", background=())
        out = translate(graph, measure=MEASURE, context=ctx)
        causal = {v for v, t in out.items() if t.is_causal}
        non_causal = {
            v for v, t in out.items() if t.semantics is XDASemantics.NON_CAUSAL
        }
        assert causal == {"Smoking", "Stress"}
        assert non_causal == {"Surgery", "Survival"}

    def test_alias_maps_measure_to_bin_node(self, graph):
        out = translate(
            graph,
            measure="LungCancer",
            context=["Location"],
            aliases={"LungCancer": MEASURE},
        )
        assert "Smoking" in out

    def test_unknown_measure_raises(self, graph):
        with pytest.raises(QueryError):
            translate(graph, measure="nope", context=["Location"])

    def test_unknown_variable_raises(self, graph):
        with pytest.raises(QueryError):
            translate(
                graph, measure=MEASURE, context=["Location"], variables=["ghost"]
            )

    def test_explainability_flag(self, graph):
        out = translate(graph, measure=MEASURE, context=["Location"])
        assert all(t.is_explainable for t in out.values())
