"""Unit + property tests for WhyQuery and AttributeProfile (Def. 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Aggregate,
    AttributeProfile,
    Predicate,
    Subspace,
    Table,
    WhyQuery,
    candidate_attributes,
)
from repro.errors import QueryError


def small_table() -> Table:
    # Two locations, explanation attribute "smoke", measure "sev".
    return Table.from_columns(
        {
            "loc": ["A", "A", "A", "B", "B", "B"],
            "smoke": ["y", "y", "n", "n", "n", "y"],
            "other": ["u", "v", "u", "v", "u", "v"],
            "sev": [3.0, 3.0, 1.0, 1.0, 1.0, 2.0],
        }
    )


def avg_query() -> WhyQuery:
    return WhyQuery.create(
        Subspace.of(loc="A"), Subspace.of(loc="B"), "sev", Aggregate.AVG
    )


class TestWhyQuery:
    def test_create_rejects_non_siblings(self):
        with pytest.raises(QueryError):
            WhyQuery.create(Subspace.of(loc="A"), Subspace.of(loc="A"), "sev")

    def test_delta_avg(self):
        t = small_table()
        # AVG(A) = 7/3, AVG(B) = 4/3
        assert avg_query().delta(t) == pytest.approx(1.0)

    def test_delta_sum(self):
        t = small_table()
        q = WhyQuery.create(
            Subspace.of(loc="A"), Subspace.of(loc="B"), "sev", Aggregate.SUM
        )
        assert q.delta(t) == pytest.approx(3.0)

    def test_delta_count(self):
        t = small_table()
        q = WhyQuery.create(
            Subspace.of(loc="A"), Subspace.of(loc="B"), "sev", Aggregate.COUNT
        )
        assert q.delta(t) == pytest.approx(0.0)

    def test_delta_with_keep_mask(self):
        t = small_table()
        keep = np.array([True, True, True, True, True, False])  # drop last row
        # AVG(A)=7/3, AVG(B)=1.0
        assert avg_query().delta(t, keep) == pytest.approx(7.0 / 3.0 - 1.0)

    def test_delta_empty_sibling_treated_as_zero(self):
        t = small_table()
        keep = np.array([False, False, False, True, True, True])
        assert avg_query().delta(t, keep) == pytest.approx(-4.0 / 3.0)

    def test_oriented_swaps_when_negative(self):
        t = small_table()
        q = WhyQuery.create(Subspace.of(loc="B"), Subspace.of(loc="A"), "sev")
        assert q.delta(t) < 0
        assert q.oriented(t).delta(t) > 0

    def test_context(self):
        ctx = avg_query().context
        assert ctx.foreground == "loc"
        assert ctx.background == ()

    def test_describe_includes_delta(self):
        assert "Δ" in avg_query().describe(small_table())

    def test_aggregate_parsing_from_string(self):
        q = WhyQuery.create(Subspace.of(loc="A"), Subspace.of(loc="B"), "sev", "sum")
        assert q.agg is Aggregate.SUM


class TestAttributeProfile:
    def test_build_collects_group_stats(self):
        t = small_table()
        prof = AttributeProfile.build(t, avg_query(), "smoke")
        assert set(prof.values) == {"y", "n"}
        i = prof.values.index("y")
        assert prof.count1[i] == 2 and prof.sum1[i] == 6.0
        assert prof.count2[i] == 1 and prof.sum2[i] == 2.0

    def test_attribute_equal_to_measure_rejected(self):
        with pytest.raises(QueryError):
            AttributeProfile.build(small_table(), avg_query(), "sev")

    def test_delta_full_matches_raw_query(self):
        t = small_table()
        prof = AttributeProfile.build(t, avg_query(), "smoke")
        assert prof.delta_full() == pytest.approx(avg_query().delta(t))

    def test_delta_without_matches_row_level_removal(self):
        t = small_table()
        q = avg_query()
        prof = AttributeProfile.build(t, q, "smoke")
        removed = prof.selection_of(Predicate.of("smoke", ["y"]))
        keep_rows = ~Predicate.of("smoke", ["y"]).mask(t)
        assert prof.delta_without(removed) == pytest.approx(q.delta(t, keep_rows))

    def test_delta_of_single_filter_matches_per_filter_delta(self):
        t = small_table()
        prof = AttributeProfile.build(t, avg_query(), "smoke")
        deltas = prof.per_filter_delta()
        for i in range(prof.n_filters):
            sel = np.zeros(prof.n_filters, dtype=bool)
            sel[i] = True
            assert prof.delta_of(sel) == pytest.approx(deltas[i])

    def test_delta_of_empty_selection_is_zero(self):
        prof = AttributeProfile.build(small_table(), avg_query(), "smoke")
        assert prof.delta_of(np.zeros(prof.n_filters, dtype=bool)) == 0.0

    def test_predicate_roundtrip(self):
        prof = AttributeProfile.build(small_table(), avg_query(), "smoke")
        sel = np.array([True] + [False] * (prof.n_filters - 1))
        pred = prof.predicate(sel)
        assert prof.selection_of(pred).tolist() == sel.tolist()

    def test_predicate_of_empty_selection_raises(self):
        prof = AttributeProfile.build(small_table(), avg_query(), "smoke")
        with pytest.raises(QueryError):
            prof.predicate(np.zeros(prof.n_filters, dtype=bool))

    def test_selection_of_wrong_dimension_raises(self):
        prof = AttributeProfile.build(small_table(), avg_query(), "smoke")
        with pytest.raises(QueryError):
            prof.selection_of(Predicate.of("other", ["u"]))


class TestCandidateAttributes:
    def test_excludes_context_and_measure(self):
        t = small_table()
        assert candidate_attributes(t, avg_query()) == ("smoke", "other")

    def test_extra_exclusions(self):
        t = small_table()
        assert candidate_attributes(t, avg_query(), exclude=["smoke"]) == ("other",)


@st.composite
def profile_case(draw):
    """Random small dataset + AVG/SUM query for consistency properties."""
    n = draw(st.integers(min_value=4, max_value=60))
    rng_seed = draw(st.integers(min_value=0, max_value=2**16))
    agg = draw(st.sampled_from([Aggregate.AVG, Aggregate.SUM]))
    rng = np.random.default_rng(rng_seed)
    loc = rng.choice(["A", "B"], size=n).tolist()
    attr = rng.choice(["p", "q", "r"], size=n).tolist()
    sev = rng.normal(size=n).tolist()
    table = Table.from_columns({"loc": loc, "attr": attr, "sev": sev})
    query = WhyQuery.create(Subspace.of(loc="A"), Subspace.of(loc="B"), "sev", agg)
    return table, query


@given(profile_case(), st.integers(min_value=0, max_value=7))
@settings(max_examples=60, deadline=None)
def test_profile_delta_without_equals_row_level_delta(case, subset_bits):
    """Property: group-sum evaluation ≡ raw row-level evaluation of Δ(D−D_P)."""
    table, query = case
    prof = AttributeProfile.build(table, query, "attr")
    m = prof.n_filters
    removed = np.array([(subset_bits >> i) & 1 == 1 for i in range(m)], dtype=bool)
    if removed.any():
        pred = prof.predicate(removed)
        keep_rows = ~pred.mask(table)
    else:
        keep_rows = np.ones(table.n_rows, dtype=bool)
    assert prof.delta_without(removed) == pytest.approx(
        query.delta(table, keep_rows), abs=1e-9
    )


@given(profile_case())
@settings(max_examples=40, deadline=None)
def test_sum_additivity_of_per_filter_deltas(case):
    """For SUM, Δ(D) decomposes as the sum of the per-filter Δ_i."""
    table, query = case
    if query.agg is not Aggregate.SUM:
        return
    prof = AttributeProfile.build(table, query, "attr")
    assert prof.per_filter_delta().sum() == pytest.approx(prof.delta_full(), abs=1e-9)
