"""XInsightModel persistence: round-trip properties and the pinned schema.

The offline artifact must survive ``save`` → ``load`` with nothing lost —
identical edge list, sepsets, aliases, and bin edges — and the on-disk JSON
schema is pinned by a golden file so format drift fails loudly instead of
silently corrupting deployed models.
"""

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SCHEMA_VERSION, XInsightModel, fit_model
from repro.data import Table
from repro.data.discretize import Bin, BinSpec
from repro.datasets import generate_cityinfo, generate_lungcancer
from repro.discovery import SepsetMap
from repro.errors import GraphError, ModelError
from repro.graph import Endpoint, MixedGraph
from repro.graph.pag import pag_from_dict, pag_to_dict

GOLDEN = Path(__file__).parent / "golden" / "model_schema_v1.json"


@pytest.fixture(scope="module")
def fitted_model():
    return fit_model(generate_lungcancer(n_rows=3000, seed=0), measure_bins=3)


def edge_list(graph: MixedGraph):
    return sorted(
        (repr(u), repr(v), mu.value, mv.value) for u, v, mu, mv in graph.edges()
    )


class TestRoundTrip:
    def test_save_load_preserves_every_field(self, fitted_model, tmp_path):
        path = fitted_model.save(tmp_path / "model.json")
        loaded = XInsightModel.load(path)
        assert loaded == fitted_model
        assert edge_list(loaded.pag) == edge_list(fitted_model.pag)
        assert loaded.sepsets == fitted_model.sepsets
        assert dict(loaded.aliases) == dict(fitted_model.aliases)
        assert loaded.fd_graph == fitted_model.fd_graph
        assert loaded.columns == fitted_model.columns
        for measure, spec in fitted_model.bin_specs.items():
            assert loaded.bin_specs[measure].edges == spec.edges
            assert loaded.bin_specs[measure] == spec
        assert loaded.alpha == fitted_model.alpha
        assert loaded.max_depth == fitted_model.max_depth
        assert loaded.max_dsep_size == fitted_model.max_dsep_size
        assert loaded.measure_bins == fitted_model.measure_bins

    def test_save_load_save_is_byte_stable(self, fitted_model, tmp_path):
        first = fitted_model.save(tmp_path / "a.json")
        second = XInsightModel.load(first).save(tmp_path / "b.json")
        assert first.read_bytes() == second.read_bytes()

    def test_round_trip_on_fd_heavy_dataset(self, tmp_path):
        model = fit_model(generate_cityinfo(n_rows=400, seed=0))
        loaded = XInsightModel.load(model.save(tmp_path / "city.json"))
        assert loaded == model
        assert loaded.fd_graph.dependencies == model.fd_graph.dependencies
        assert dict(loaded.fd_graph.redundant) == dict(model.fd_graph.redundant)

    def test_loaded_model_transform_matches_fitted_labels(
        self, fitted_model, tmp_path
    ):
        table = generate_lungcancer(n_rows=3000, seed=0)
        loaded = XInsightModel.load(fitted_model.save(tmp_path / "m.json"))
        a = fitted_model.transform(table)
        b = loaded.transform(table)
        for measure, bin_col in fitted_model.aliases.items():
            assert a.values(bin_col) == b.values(bin_col)


# Random mixed graphs over string nodes with arbitrary endpoint marks.
marks_st = st.sampled_from([Endpoint.TAIL, Endpoint.ARROW, Endpoint.CIRCLE])
nodes_st = st.lists(
    st.text(alphabet="abcdeXYZ_", min_size=1, max_size=6),
    min_size=2,
    max_size=6,
    unique=True,
)


@st.composite
def graphs_st(draw):
    nodes = draw(nodes_st)
    graph = MixedGraph(nodes)
    pairs = [(u, v) for i, u in enumerate(nodes) for v in nodes[i + 1 :]]
    for u, v in pairs:
        if draw(st.booleans()):
            graph.add_edge(u, v, draw(marks_st), draw(marks_st))
    return graph


class TestComponentRoundTrips:
    @given(graph=graphs_st())
    @settings(deadline=None, max_examples=50)
    def test_mixed_graph_round_trip(self, graph):
        restored = MixedGraph.from_dict(json.loads(json.dumps(graph.to_dict())))
        assert restored == graph
        assert restored.nodes == graph.nodes

    @given(
        records=st.lists(
            st.tuples(
                st.text(min_size=1, max_size=4),
                st.text(min_size=1, max_size=4),
                st.sets(st.text(min_size=1, max_size=4), max_size=3),
            ),
            max_size=12,
        )
    )
    @settings(deadline=None, max_examples=50)
    def test_sepset_map_round_trip(self, records):
        sepsets = SepsetMap()
        for x, y, z in records:
            if x != y:
                sepsets.record(x, y, z)
        restored = SepsetMap.from_dict(json.loads(json.dumps(sepsets.to_dict())))
        assert restored == sepsets

    @given(
        lows=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
            min_size=2,
            max_size=8,
            unique=True,
        ),
        method=st.sampled_from(["width", "frequency", "singleton"]),
    )
    @settings(deadline=None, max_examples=50)
    def test_bin_spec_round_trip(self, lows, method):
        edges = sorted(lows)
        if method == "singleton":
            bins = tuple(Bin(e, e) for e in edges)
        else:
            bins = tuple(Bin(lo, hi) for lo, hi in zip(edges, edges[1:]))
        spec = BinSpec("m", "m_bin", method, bins)
        restored = BinSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.edges == spec.edges


class TestServingNeverMintsCategories:
    """Stored bins are a closed category set: fresh data cannot introduce
    labels the graph was never learned on — range bins clamp, singleton
    bins snap to the nearest fitted value."""

    def make_model(self):
        flags = [0.0, 1.0] * 20
        table = Table.from_columns(
            {"D": ["a", "b"] * 20, "E": ["u", "u", "v", "v"] * 10, "Flag": flags}
        )
        return fit_model(table, measure_bins=5)  # 2 distinct → singleton

    def test_singleton_spec_snaps_unseen_values(self):
        model = self.make_model()
        assert model.bin_specs["Flag"].method == "singleton"
        fresh = Table.from_columns(
            {"D": ["a", "b", "a"], "E": ["u", "v", "u"], "Flag": [0.0, 1.0, 2.0]}
        )
        served = model.transform(fresh)
        assert set(served.values("Flag_bin")) <= {"=0", "=1"}

    def test_singleton_labels_unchanged_for_fitted_values(self):
        model = self.make_model()
        spec = model.bin_specs["Flag"]
        import numpy as np

        assert spec.labels(np.array([0.0, 1.0])) == ["=0", "=1"]


def _golden_payload() -> dict:
    """The golden payload minus the save-time fingerprint, so mutation
    tests exercise parse validation rather than tamper detection."""
    payload = json.loads(GOLDEN.read_text())
    payload.pop("fingerprint", None)
    return payload


class TestBinSpecPayloadValidation:
    def test_unknown_method_is_a_model_error(self):
        payload = _golden_payload()
        payload["bin_specs"]["Pay"]["method"] = "freq"
        with pytest.raises(ModelError, match="malformed"):
            XInsightModel.from_dict(payload)

    def test_empty_bins_is_a_model_error(self):
        payload = _golden_payload()
        payload["bin_specs"]["Pay"]["bins"] = []
        with pytest.raises(ModelError, match="malformed"):
            XInsightModel.from_dict(payload)

    def test_save_into_missing_directory_is_a_model_error(
        self, fitted_model, tmp_path
    ):
        with pytest.raises(ModelError, match="cannot write"):
            fitted_model.save(tmp_path / "no_such_dir" / "model.json")


class TestGoldenSchema:
    """Format drift must fail loudly: the golden file pins schema v1."""

    def test_schema_version_is_pinned(self):
        assert SCHEMA_VERSION == 1, (
            "schema version changed: regenerate tests/golden/ and add a "
            "migration path for saved models"
        )

    def test_golden_file_round_trips_byte_identically(self, tmp_path):
        model = XInsightModel.load(GOLDEN)
        resaved = model.save(tmp_path / "resaved.json")
        assert resaved.read_bytes() == GOLDEN.read_bytes(), (
            "serialization format drifted from the committed v1 golden file"
        )

    def test_golden_top_level_keys_are_stable(self):
        payload = json.loads(GOLDEN.read_text())
        assert set(payload) == {
            "format",
            "schema_version",
            "fingerprint",
            "pag",
            "sepsets",
            "fd_graph",
            "aliases",
            "bin_specs",
            "columns",
            "fit",
        }
        assert payload["format"] == "xinsight-model"
        assert payload["schema_version"] == 1

    def test_future_schema_version_is_rejected(self):
        payload = _golden_payload()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ModelError, match="schema version"):
            XInsightModel.from_dict(payload)

    def test_foreign_payload_is_rejected(self, tmp_path):
        path = tmp_path / "not_a_model.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ModelError, match="artifact"):
            XInsightModel.load(path)

    def test_missing_file_is_a_model_error(self, tmp_path):
        with pytest.raises(ModelError, match="no model file"):
            XInsightModel.load(tmp_path / "absent.json")

    def test_invalid_json_is_a_model_error(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.raises(ModelError, match="not valid JSON"):
            XInsightModel.load(path)

    def test_truncated_payload_is_a_model_error(self):
        payload = {"format": "xinsight-model", "schema_version": SCHEMA_VERSION}
        with pytest.raises(ModelError, match="malformed"):
            XInsightModel.from_dict(payload)

    def test_wrong_typed_section_is_a_model_error(self):
        payload = _golden_payload()
        payload["bin_specs"] = "not-a-mapping"
        with pytest.raises(ModelError, match="malformed"):
            XInsightModel.from_dict(payload)


class TestFingerprint:
    """The content hash: stable across save/load, and tamper-evident."""

    def test_fingerprint_survives_a_round_trip(self, fitted_model, tmp_path):
        path = fitted_model.save(tmp_path / "model.json")
        reloaded = XInsightModel.load(path)
        assert reloaded.fingerprint() == fitted_model.fingerprint()
        assert json.loads(path.read_text())["fingerprint"] == (
            fitted_model.fingerprint()
        )

    def test_fingerprint_is_cached_and_deterministic(self, fitted_model):
        assert fitted_model.fingerprint() == fitted_model.fingerprint()
        assert len(fitted_model.fingerprint()) == 64  # sha256 hex

    def test_fingerprint_tracks_content_not_identity(self, fitted_model):
        golden = XInsightModel.load(GOLDEN)
        assert golden.fingerprint() != fitted_model.fingerprint() or (
            golden.to_dict() == fitted_model.to_dict()
        )

    def test_tampered_artifact_is_rejected_on_load(self, fitted_model, tmp_path):
        path = fitted_model.save(tmp_path / "model.json")
        payload = json.loads(path.read_text())
        payload["fit"]["alpha"] = 0.123456
        path.write_text(json.dumps(payload))
        with pytest.raises(ModelError, match="fingerprint mismatch"):
            XInsightModel.load(path)

    def test_pre_fingerprint_artifact_still_loads(self):
        # Artifacts saved before the fingerprint key existed are schema v1
        # too; the key is optional save metadata, not schema.
        model = XInsightModel.from_dict(_golden_payload())
        golden = XInsightModel.load(GOLDEN)
        assert model.fingerprint() == golden.fingerprint()


class TestPagSerializationValidation:
    def test_pag_dict_round_trip(self, fitted_model):
        assert pag_from_dict(pag_to_dict(fitted_model.pag)) == fitted_model.pag

    def test_invalid_pag_edge_rejected_on_load(self):
        payload = {"nodes": ["a", "b"], "edges": [["a", "b", "?", ">"]]}
        with pytest.raises((GraphError, ValueError)):
            pag_from_dict(payload)
