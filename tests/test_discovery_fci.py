"""FCI correctness tests against the m-separation oracle.

The central property: running FCI with a perfect CI oracle on the true MAG
must return a PAG whose adjacencies equal the MAG's and whose every
non-circle endpoint mark agrees with the MAG (soundness of R0–R10 and the
Possible-D-SEP phase).
"""

import numpy as np
import pytest
from conftest import random_parent_map
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import fci, possible_d_sep
from repro.graph import (
    Endpoint,
    MixedGraph,
    adjacency_scores,
    dag_from_parents,
    endpoint_scores,
    latent_projection,
)
from repro.independence import OracleCITest


class TestFciOracleExamples:
    def test_chain_all_circles(self):
        dag = dag_from_parents({"b": ["a"], "c": ["b"]})
        res = fci(("a", "b", "c"), OracleCITest(dag))
        g = res.pag
        assert g.has_edge("a", "b") and g.has_edge("b", "c")
        # Chain MAGs are Markov-equivalent to fork/reverse-chain: every
        # endpoint is undetermined.
        for u, v in [("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")]:
            assert g.mark(u, v) is Endpoint.CIRCLE

    def test_collider_oriented_with_circle_tails(self):
        dag = dag_from_parents({"c": ["a", "b"]})
        res = fci(("a", "b", "c"), OracleCITest(dag))
        g = res.pag
        assert g.mark("a", "c") is Endpoint.ARROW
        assert g.mark("b", "c") is Endpoint.ARROW
        assert g.mark("c", "a") is Endpoint.CIRCLE
        assert g.mark("c", "b") is Endpoint.CIRCLE

    def test_rule1_propagation(self):
        # a -> c <- b, c -> d: R1 orients c -> d fully.
        dag = dag_from_parents({"c": ["a", "b"], "d": ["c"]})
        res = fci(tuple("abcd"), OracleCITest(dag))
        g = res.pag
        assert g.is_parent("c", "d")

    def test_latent_confounder_pag(self):
        # Fig. 2 enriched: L -> x, L -> y (L latent); u -> x, v -> y observed
        # instruments make the bidirected edge detectable.
        dag = dag_from_parents({"x": ["L", "u"], "y": ["L", "v"]})
        mag = latent_projection(dag, ["x", "y", "u", "v"])
        assert mag.is_bidirected("x", "y")
        res = fci(("x", "y", "u", "v"), OracleCITest(mag))
        g = res.pag
        # u *-> x <-> y <-* v: arrowheads at x and y on the x-y edge.
        assert g.mark("x", "y") is Endpoint.ARROW
        assert g.mark("y", "x") is Endpoint.ARROW

    def test_fci_result_reports_tests(self):
        dag = dag_from_parents({"b": ["a"]})
        res = fci(("a", "b"), OracleCITest(dag))
        assert res.tests_run > 0


class TestPossibleDSep:
    def test_collider_member(self):
        g = MixedGraph(["a", "b", "c"])
        g.add_edge("a", "b", Endpoint.CIRCLE, Endpoint.ARROW)
        g.add_edge("c", "b", Endpoint.CIRCLE, Endpoint.ARROW)
        # b is a collider between a and c: c reachable from a through b.
        assert possible_d_sep(g, "a") == {"b", "c"}

    def test_noncollider_blocks_without_triangle(self):
        g = MixedGraph(["a", "b", "c"])
        g.add_directed_edge("a", "b")
        g.add_directed_edge("b", "c")
        # b has a tail on the b->c edge: definite noncollider, no triangle.
        assert possible_d_sep(g, "a") == {"b"}

    def test_triangle_extends_reachability(self):
        g = MixedGraph(["a", "b", "c"])
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("a", "c")
        assert possible_d_sep(g, "a") == {"b", "c"}


def _random_projected_mag(seed: int, n_total: int, n_latent: int):
    rng = np.random.default_rng(seed)
    names = [f"v{i}" for i in range(n_total)]
    dag = dag_from_parents(random_parent_map(rng, n_total, 0.4))
    latent = set(rng.choice(names, size=n_latent, replace=False).tolist())
    observed = [v for v in names if v not in latent]
    return latent_projection(dag, observed), observed


@given(
    seed=st.integers(min_value=0, max_value=4000),
    n_total=st.integers(min_value=4, max_value=7),
)
@settings(max_examples=40, deadline=None)
def test_fci_oracle_soundness_on_projected_mags(seed, n_total):
    """Adjacency-exactness + endpoint soundness on random projected MAGs."""
    mag, observed = _random_projected_mag(seed, n_total, n_latent=max(1, n_total // 4))
    res = fci(tuple(observed), OracleCITest(mag), max_dsep_size=None)
    adj = adjacency_scores(res.pag, mag)
    assert adj.precision == 1.0 and adj.recall == 1.0, (
        f"adjacency mismatch: learned={res.pag!r} truth={mag!r}"
    )
    marks = endpoint_scores(res.pag, mag)
    assert marks.precision == 1.0, (
        f"unsound endpoint marks: learned={res.pag!r} truth={mag!r}"
    )


@given(seed=st.integers(min_value=0, max_value=4000))
@settings(max_examples=25, deadline=None)
def test_fci_oracle_on_full_dags_recovers_cpdag_arrows(seed):
    """Without latents, PAG arrowheads must agree with the DAG."""
    rng = np.random.default_rng(seed)
    names = [f"v{i}" for i in range(5)]
    dag = dag_from_parents(random_parent_map(rng, 5, 0.45))
    res = fci(tuple(names), OracleCITest(dag), max_dsep_size=None)
    assert res.pag.same_adjacencies(dag)
    assert endpoint_scores(res.pag, dag).precision == 1.0
