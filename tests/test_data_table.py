"""Unit tests for the columnar Table and column types."""

import numpy as np
import pytest

from repro.data import CategoricalColumn, NumericColumn, Role, Schema, Table
from repro.errors import SchemaError


def make_table() -> Table:
    return Table.from_columns(
        {
            "city": ["a", "b", "a", "c"],
            "state": ["X", "Y", "X", "Y"],
            "pop": [1.0, 2.0, 3.0, 4.0],
        }
    )


class TestCategoricalColumn:
    def test_from_values_assigns_codes_in_first_appearance_order(self):
        col = CategoricalColumn.from_values(["b", "a", "b", "c"])
        assert col.categories == ("b", "a", "c")
        assert col.codes.tolist() == [0, 1, 0, 2]

    def test_cardinality_counts_categories(self):
        col = CategoricalColumn.from_values(["x", "y", "x"])
        assert col.cardinality == 2

    def test_decode_roundtrips(self):
        values = ["p", "q", "p", "r", "q"]
        assert CategoricalColumn.from_values(values).decode() == values

    def test_code_of_unknown_value_raises(self):
        col = CategoricalColumn.from_values(["x"])
        with pytest.raises(SchemaError):
            col.code_of("nope")

    def test_out_of_range_codes_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalColumn(np.array([0, 5]), ("only",))

    def test_take_preserves_categories(self):
        col = CategoricalColumn.from_values(["a", "b", "c"])
        sub = col.take(np.array([2]))
        assert sub.categories == ("a", "b", "c")
        assert sub.decode() == ["c"]


class TestNumericColumn:
    def test_values_coerced_to_float64(self):
        col = NumericColumn.from_values([1, 2, 3])
        assert col.values.dtype == np.float64

    def test_two_dimensional_rejected(self):
        with pytest.raises(SchemaError):
            NumericColumn(np.zeros((2, 2)))


class TestSchema:
    def test_dimension_and_measure_partition(self):
        t = make_table()
        assert t.dimensions == ("city", "state")
        assert t.measures == ("pop",)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a", "a"), {"a": Role.DIMENSION})

    def test_missing_role_rejected(self):
        with pytest.raises(SchemaError):
            Schema(("a", "b"), {"a": Role.DIMENSION})

    def test_require_role_mismatch_raises(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.schema.require("pop", Role.DIMENSION)

    def test_contains(self):
        t = make_table()
        assert "city" in t.schema
        assert "nope" not in t.schema


class TestTable:
    def test_role_inference_strings_vs_numbers(self):
        t = make_table()
        assert t.schema.role("city") is Role.DIMENSION
        assert t.schema.role("pop") is Role.MEASURE

    def test_bool_columns_are_dimensions(self):
        t = Table.from_columns({"flag": [True, False]})
        assert t.schema.role("flag") is Role.DIMENSION

    def test_explicit_roles_override_inference(self):
        t = Table.from_columns(
            {"year": [2020, 2021]}, roles={"year": Role.DIMENSION}
        )
        assert t.schema.role("year") is Role.DIMENSION
        assert t.categories("year") == (2020, 2021)

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns({"a": ["x"], "b": [1.0, 2.0]})

    def test_select_by_mask(self):
        t = make_table()
        sub = t.select(np.array([True, False, True, False]))
        assert sub.n_rows == 2
        assert sub.values("city") == ["a", "a"]

    def test_select_keeps_category_table(self):
        t = make_table()
        sub = t.select(np.array([False, True, False, False]))
        assert sub.cardinality("city") == 3

    def test_select_by_integer_indices(self):
        t = make_table()
        sub = t.select(np.array([0, 2], dtype=np.int32))
        assert sub.n_rows == 2
        assert sub.values("city") == ["a", "a"]

    def test_select_empty_mask(self):
        t = make_table()
        assert t.select(np.array([])).n_rows == 0

    @pytest.mark.parametrize(
        "mask",
        [np.array([1.0, 0.0, 1.0, 0.0]), np.array(["a", "b", "c", "d"])],
        ids=["float", "string"],
    )
    def test_select_rejects_non_integer_mask(self, mask):
        # A float mask used to be truncated via astype(int64) and silently
        # reinterpreted as row indices; now it is a typed error.
        t = make_table()
        with pytest.raises(SchemaError, match="boolean or integer"):
            t.select(mask)

    def test_measure_values(self):
        t = make_table()
        assert t.measure_values("pop").tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_measure_values_on_dimension_raises(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.measure_values("city")

    def test_codes_on_measure_raises(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.codes("pop")

    def test_with_column_appends(self):
        t = make_table().with_column("country", ["u", "u", "v", "v"])
        assert "country" in t.schema
        assert t.dimensions == ("city", "state", "country")

    def test_with_column_replaces_in_place(self):
        t = make_table().with_column("pop", [9.0, 9.0, 9.0, 9.0], role=Role.MEASURE)
        assert t.measure_values("pop").tolist() == [9.0] * 4
        assert t.schema.columns == ("city", "state", "pop")

    def test_drop_columns(self):
        t = make_table().drop_columns(["state"])
        assert t.schema.columns == ("city", "pop")

    def test_drop_unknown_raises(self):
        with pytest.raises(SchemaError):
            make_table().drop_columns(["nope"])

    def test_project_reorders(self):
        t = make_table().project(["pop", "city"])
        assert t.schema.columns == ("pop", "city")

    def test_from_rows(self):
        t = Table.from_rows(["x", "y"], [["a", 1.0], ["b", 2.0]])
        assert t.n_rows == 2
        assert t.values("x") == ["a", "b"]

    def test_head(self):
        assert make_table().head(2).n_rows == 2

    def test_repr_mentions_row_count(self):
        assert "4 rows" in repr(make_table())
