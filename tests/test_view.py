"""Whole-view causal summaries (``explain_view``).

Covers the full stack introduced by the view subsystem:

* :func:`view_from_spec` — the untrusted-spec validation boundary;
* :func:`enumerate_view_queries` — deterministic, Δ-oriented sibling
  enumeration in both orientations (pairwise / vs-rest proxy);
* :func:`summarize_view` — dedup by (predicate, attribute, type),
  max-responsibility retention, coverage, poison-pair isolation, and
  invariance under permutation of the (spec, report) inputs;
* :class:`ViewSummary` serialization round-trips and markdown rendering;
* hypothesis properties over random synthetic views and reports;
* model-backed end-to-end: per-pair reports byte-identical to individual
  ``explain`` calls, warm workspace cache, serial ≡ sharded.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplainSession,
    ViewSummary,
    enumerate_view_queries,
    fit_model,
    summarize_view,
    view_from_spec,
    view_summary_to_markdown,
)
from repro.core.explanation import Explanation, ExplanationType
from repro.core.reporting import report_to_dict
from repro.core.session import XInsightReport
from repro.core.xtranslator import CausalRole
from repro.data import Aggregate, Subspace, Table, group_by
from repro.data.filters import Predicate
from repro.data.groupby import GroupByResult, GroupedValue
from repro.datasets import generate_lungcancer
from repro.errors import QueryError

VIEW_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_view(values, counts=None, agg=Aggregate.AVG, dims=("d",)):
    """A single-dimension GroupByResult built directly from bar values."""
    counts = counts or [1] * len(values)
    groups = tuple(
        GroupedValue(key=(f"g{i}",), value=float(v), count=int(c))
        for i, (v, c) in enumerate(zip(values, counts))
    )
    return GroupByResult(tuple(dims), "m", agg, groups)


def make_report(spec, explanations):
    """A synthetic XInsightReport answering one enumerated spec."""
    return XInsightReport(
        query=spec.query,
        delta=spec.s1.value - spec.s2.value,
        explanations=list(explanations),
        translations={},
    )


def make_explanation(
    attribute="Smoke",
    value="yes",
    responsibility=0.8,
    etype=ExplanationType.CAUSAL,
    role=CausalRole.PARENT,
    score=0.5,
):
    return Explanation(
        type=etype,
        predicate=Predicate.of(attribute, (value,)),
        responsibility=responsibility,
        attribute=attribute,
        role=role,
        score=score,
    )


# ----------------------------------------------------------------------
# view_from_spec — the validation boundary
# ----------------------------------------------------------------------


class TestViewFromSpec:
    @pytest.fixture(scope="class")
    def table(self):
        return generate_lungcancer(n_rows=400, seed=0)

    def test_by_string_matches_group_by(self, table):
        view = view_from_spec(
            {"by": "Location", "measure": "LungCancer"}, table
        )
        assert view == group_by(table, ("Location",), "LungCancer")

    def test_dimensions_list_alias_and_agg(self, table):
        view = view_from_spec(
            {
                "dimensions": ["Location", "Smoking"],
                "measure": "LungCancer",
                "agg": "SUM",
            },
            table,
        )
        assert view.dimensions == ("Location", "Smoking")
        assert view.agg is Aggregate.SUM

    @pytest.mark.parametrize(
        "spec",
        [
            "not-an-object",
            {"by": "Location", "measure": "LungCancer", "bogus": 1},
            {"by": "Location", "dimensions": ["Location"], "measure": "LungCancer"},
            {"measure": "LungCancer"},
            {"by": [], "measure": "LungCancer"},
            {"by": ["Location", 3], "measure": "LungCancer"},
            {"by": "Location"},
            {"by": "Location", "measure": 7},
            {"by": "Location", "measure": "LungCancer", "agg": "MEDIAN"},
        ],
        ids=[
            "non-mapping",
            "unknown-field",
            "by-and-dimensions",
            "missing-by",
            "empty-by",
            "non-string-dim",
            "missing-measure",
            "non-string-measure",
            "bad-agg",
        ],
    )
    def test_malformed_specs_raise_query_error(self, table, spec):
        with pytest.raises(QueryError):
            view_from_spec(spec, table)


# ----------------------------------------------------------------------
# enumerate_view_queries
# ----------------------------------------------------------------------


class TestEnumerateViewQueries:
    def test_invalid_orientation_raises(self):
        with pytest.raises(QueryError):
            enumerate_view_queries(make_view([1.0, 2.0]), orientation="sideways")

    def test_pairwise_delta_oriented_chart_order(self):
        view = make_view([1.0, 5.0, 3.0])
        specs = enumerate_view_queries(view, orientation="pairwise")
        assert [(s.s1.key, s.s2.key) for s in specs] == [
            (("g1",), ("g0",)),  # 5 vs 1
            (("g2",), ("g0",)),  # 3 vs 1
            (("g1",), ("g2",)),  # 5 vs 3
        ]
        assert all(s.s1.value >= s.s2.value for s in specs)
        assert all(s.kind == "pairwise" for s in specs)

    def test_query_subspaces_fix_every_dimension(self):
        view = GroupByResult(
            ("a", "b"),
            "m",
            Aggregate.AVG,
            (
                GroupedValue(("x", "p"), 1.0, 1),
                GroupedValue(("x", "q"), 2.0, 1),
            ),
        )
        (spec,) = enumerate_view_queries(view, orientation="pairwise")
        assert spec.query.s1 == Subspace.of(a="x", b="q")
        assert spec.query.s2 == Subspace.of(a="x", b="p")
        assert spec.query.measure == "m"

    def test_multi_dimension_enumerates_sibling_pairs_only(self):
        # 2×2 facet grid: 4 sibling pairs, not the 6 of all-vs-all.
        view = GroupByResult(
            ("a", "b"),
            "m",
            Aggregate.AVG,
            tuple(
                GroupedValue((x, y), float(i), 1)
                for i, (x, y) in enumerate(
                    [("x", "p"), ("x", "q"), ("y", "p"), ("y", "q")]
                )
            ),
        )
        specs = enumerate_view_queries(view, orientation="pairwise")
        assert len(specs) == 4
        for spec in specs:
            differing = sum(
                1 for u, v in zip(spec.s1.key, spec.s2.key) if u != v
            )
            assert differing == 1

    def test_vs_rest_picks_sibling_nearest_pooled_rest(self):
        # AVG rest of g0 pools g1, g2: (4·1 + 1·1) / 2 = 2.5 — g1 and g2
        # are equidistant, chart order breaks the tie toward g1.
        view = make_view([10.0, 4.0, 1.0], counts=[2, 1, 1])
        specs = enumerate_view_queries(view, orientation="vs_rest")
        assert [(s.s1.key, s.s2.key) for s in specs] == [
            (("g0",), ("g1",)),
            (("g0",), ("g1",)),  # rest of g1 = (20+1)/3 = 7 → g0 nearest
            (("g0",), ("g2",)),  # rest of g2 = (20+4)/3 = 8 → g0 nearest
        ]
        assert all(s.kind == "vs_rest" for s in specs)

    def test_both_emits_pairwise_before_vs_rest(self):
        view = make_view([3.0, 1.0, 2.0])
        specs = enumerate_view_queries(view, orientation="both")
        kinds = [s.kind for s in specs]
        assert kinds == ["pairwise"] * 3 + ["vs_rest"] * 3
        assert specs == enumerate_view_queries(view, orientation="both")

    def test_sum_and_count_rest_aggregates(self):
        # SUM rest of g0 = 4 + 1 = 5 → g1 (|4-5|=1) beats g2 (|1-5|=4).
        view = make_view([10.0, 4.0, 1.0], agg=Aggregate.SUM)
        specs = enumerate_view_queries(view, orientation="vs_rest")
        assert (specs[0].s1.key, specs[0].s2.key) == (("g0",), ("g1",))
        # COUNT rest of g0 = 3 + 9 = 12 → g2 (|9-12|=3) beats g1 (|3-12|=9).
        view = make_view([5.0, 3.0, 9.0], counts=[5, 3, 9], agg=Aggregate.COUNT)
        specs = enumerate_view_queries(view, orientation="vs_rest")
        assert (specs[0].s1.key, specs[0].s2.key) == (("g2",), ("g0",))

    def test_single_group_has_no_queries(self):
        assert enumerate_view_queries(make_view([1.0])) == []

    def test_unfaceted_groups_skipped_in_vs_rest(self):
        # Two groups with no shared facet edge: no siblings at all.
        view = GroupByResult(
            ("a", "b"),
            "m",
            Aggregate.AVG,
            (
                GroupedValue(("x", "p"), 1.0, 1),
                GroupedValue(("y", "q"), 2.0, 1),
            ),
        )
        assert enumerate_view_queries(view, orientation="both") == []


# ----------------------------------------------------------------------
# summarize_view + ViewSummary serialization
# ----------------------------------------------------------------------


class TestSummarizeView:
    def test_length_mismatch_raises(self):
        view = make_view([1.0, 2.0])
        specs = enumerate_view_queries(view, orientation="pairwise")
        with pytest.raises(QueryError):
            summarize_view(view, specs, [])

    def test_dedup_keeps_max_responsibility_and_sums_view_score(self):
        view = make_view([5.0, 3.0, 1.0])
        specs = enumerate_view_queries(view, orientation="pairwise")
        shared_low = make_explanation(responsibility=0.5, role=CausalRole.ANCESTOR)
        shared_high = make_explanation(responsibility=0.8, role=CausalRole.PARENT)
        lone = make_explanation(
            attribute="Gender", value="f", responsibility=0.9
        )
        reports = [
            make_report(specs[0], [shared_low, lone]),
            make_report(specs[1], [shared_high]),
            make_report(specs[2], []),
        ]
        summary = summarize_view(view, specs, reports)

        assert len(summary.explanations) == 2
        shared = next(
            e for e in summary.explanations if e.attribute == "Smoke"
        )
        assert shared.responsibility == 0.8  # max instance wins...
        assert shared.causal_role == CausalRole.PARENT.value  # ...verdict too
        assert shared.view_score == pytest.approx(1.3)
        assert shared.coverage == pytest.approx(2 / 3)
        assert shared.pairs == (0, 1)
        # Summed view score ranks the 2-pair explanation over the 0.9 lone.
        assert summary.explanations[0] is shared
        assert summary.top(1) == (shared,)

    def test_same_predicate_different_type_not_merged(self):
        view = make_view([2.0, 1.0])
        specs = enumerate_view_queries(view, orientation="pairwise")
        causal = make_explanation(etype=ExplanationType.CAUSAL)
        relevant = make_explanation(
            etype=ExplanationType.NON_CAUSAL, role=CausalRole.NONE
        )
        summary = summarize_view(
            view, specs, [make_report(specs[0], [causal, relevant])]
        )
        assert len(summary.explanations) == 2
        assert {e.type for e in summary.explanations} == {
            "causal",
            "non-causal",
        }

    def test_poison_pair_degrades_one_row(self):
        view = make_view([5.0, 3.0, 1.0])
        specs = enumerate_view_queries(view, orientation="pairwise")
        reports = [
            make_report(specs[0], [make_explanation()]),
            ValueError("boom"),
            make_report(specs[2], []),
        ]
        summary = summarize_view(view, specs, reports)
        assert [p.error for p in summary.pairs] == [
            None,
            "ValueError: boom",
            None,
        ]
        assert summary.pairs[1].report is None
        assert summary.failed_pairs == (summary.pairs[1],)
        assert summary.pairs[0].report == report_to_dict(reports[0])
        # Coverage denominators still count the failed pair.
        assert summary.explanations[0].coverage == pytest.approx(1 / 3)

    def test_summary_invariant_under_input_permutation(self):
        view = make_view([5.0, 3.0, 1.0])
        specs = enumerate_view_queries(view, orientation="both")
        reports = [
            make_report(spec, [make_explanation(responsibility=0.1 * i)])
            for i, spec in enumerate(specs)
        ]
        baseline = summarize_view(view, specs, reports).to_dict()
        order = list(reversed(range(len(specs))))
        shuffled = summarize_view(
            view, [specs[i] for i in order], [reports[i] for i in order]
        )
        assert shuffled.to_dict() == baseline

    def test_round_trip_through_dict(self):
        view = make_view([5.0, 3.0, 1.0])
        specs = enumerate_view_queries(view, orientation="both")
        reports = [
            make_report(specs[0], [make_explanation()]),
            RuntimeError("worker died"),
        ] + [make_report(s, []) for s in specs[2:]]
        summary = summarize_view(view, specs, reports)
        payload = summary.to_dict()
        assert ViewSummary.from_dict(payload).to_dict() == payload

    def test_markdown_rendering(self):
        view = make_view([5.0, 3.0, 1.0])
        specs = enumerate_view_queries(view, orientation="pairwise")
        reports = [
            make_report(specs[0], [make_explanation()]),
            KeyError("gone"),
            make_report(specs[2], []),
        ]
        text = view_summary_to_markdown(summarize_view(view, specs, reports))
        assert "AVG(m) GROUP BY d" in text
        assert "2/3 pair(s)" in text
        assert "| causal | Smoke | Smoke ∈ {yes} |" in text
        assert "pair 1 (" in text and "KeyError" in text

    def test_markdown_without_explanations(self):
        view = make_view([2.0, 1.0])
        specs = enumerate_view_queries(view, orientation="pairwise")
        text = view_summary_to_markdown(
            summarize_view(view, specs, [make_report(specs[0], [])])
        )
        assert "(no explanation found)" in text


# ----------------------------------------------------------------------
# Hypothesis properties (random synthetic views and reports)
# ----------------------------------------------------------------------


bar_values = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def synthetic_views(draw) -> GroupByResult:
    n = draw(st.integers(2, 5))
    values = draw(st.lists(bar_values, min_size=n, max_size=n))
    counts = draw(st.lists(st.integers(1, 40), min_size=n, max_size=n))
    agg = draw(st.sampled_from(list(Aggregate)))
    return make_view(values, counts=counts, agg=agg)


@st.composite
def summarize_inputs(draw):
    """A view plus one synthetic report (or exception) per enumerated pair."""
    view = draw(synthetic_views())
    specs = enumerate_view_queries(view, orientation="both")
    pool = [
        ("Smoke", "yes"),
        ("Smoke", "no"),
        ("Gender", "f"),
    ]
    reports = []
    for spec in specs:
        if draw(st.integers(0, 9)) == 0:  # occasional poison pair
            reports.append(RuntimeError("chaos"))
            continue
        explanations = [
            make_explanation(
                attribute=attr,
                value=value,
                responsibility=draw(st.floats(0.0, 1.0, allow_nan=False)),
                etype=draw(st.sampled_from(list(ExplanationType))),
            )
            for attr, value in draw(
                st.lists(st.sampled_from(pool), max_size=3)
            )
        ]
        reports.append(make_report(spec, explanations))
    return view, specs, reports


@VIEW_SETTINGS
@given(view=synthetic_views(), orientation=st.sampled_from(["pairwise", "vs_rest", "both"]))
def test_property_every_pair_is_delta_oriented(view, orientation):
    for spec in enumerate_view_queries(view, orientation=orientation):
        assert spec.s1.value >= spec.s2.value
        assert spec.query.s1 == Subspace.of(
            **dict(zip(view.dimensions, spec.s1.key))
        )


@VIEW_SETTINGS
@given(view=synthetic_views())
def test_property_vs_rest_queries_repeat_pairwise_pairs(view):
    """Every vs-rest comparison is some pairwise pair (possibly swapped —
    ties in Δ-orientation can flip the sides), so ``both`` order makes the
    vs-rest tail pure cache hits."""
    pairwise = {
        (s.s1.key, s.s2.key)
        for s in enumerate_view_queries(view, orientation="pairwise")
    }
    for spec in enumerate_view_queries(view, orientation="vs_rest"):
        pair = (spec.s1.key, spec.s2.key)
        assert pair in pairwise or pair[::-1] in pairwise


@VIEW_SETTINGS
@given(data=summarize_inputs(), seed=st.integers(0, 2**16))
def test_property_summary_is_permutation_invariant(data, seed):
    view, specs, reports = data
    baseline = summarize_view(view, specs, reports).to_dict()
    order = list(range(len(specs)))
    np.random.default_rng(seed).shuffle(order)
    shuffled = summarize_view(
        view, [specs[i] for i in order], [reports[i] for i in order]
    ).to_dict()
    assert shuffled == baseline
    restored = ViewSummary.from_dict(baseline).to_dict()
    assert restored == baseline


@VIEW_SETTINGS
@given(data=summarize_inputs())
def test_property_dedup_keeps_max_responsibility(data):
    view, specs, reports = data
    summary = summarize_view(view, specs, reports)
    best: dict = {}
    for report in reports:
        if isinstance(report, BaseException):
            continue
        for e in report.explanations:
            key = (e.predicate, e.attribute, e.type.value)
            best[key] = max(best.get(key, 0.0), e.responsibility)
    assert len(summary.explanations) == len(best)
    for e in summary.explanations:
        key = (
            Predicate.of(e.predicate_dimension, e.predicate_values),
            e.attribute,
            e.type,
        )
        assert e.responsibility == round(best[key], 6)
        assert 0.0 < e.coverage <= 1.0
        assert e.view_score >= e.responsibility - 1e-9


# ----------------------------------------------------------------------
# Model-backed end-to-end (the tentpole acceptance mechanics)
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def table():
    return generate_lungcancer(n_rows=800, seed=0)


@pytest.fixture(scope="module")
def model(table):
    return fit_model(table, measure_bins=3)


@pytest.fixture(scope="module")
def view_table():
    """A 4×3 faceted view (12 groups) with a planted causal driver."""
    rng = np.random.default_rng(7)
    n = 720
    facet = rng.choice(list("ABCD"), size=n)
    band = rng.choice(["low", "mid", "high"], size=n)
    smoke = rng.choice(["yes", "no"], size=n)
    measure = (
        rng.normal(0.0, 1.0, size=n)
        + 2.0 * (smoke == "yes")
        + 1.0 * (band == "high")
    )
    return Table.from_columns(
        {
            "Facet": facet.tolist(),
            "Band": band.tolist(),
            "Smoke": smoke.tolist(),
            "M": measure,
        }
    )


@pytest.fixture(scope="module")
def view_model(view_table):
    return fit_model(view_table, measure_bins=3)


class TestExplainViewEndToEnd:
    def test_spec_view_warm_cache_and_round_trip(self, model, table):
        session = ExplainSession(model, table)
        summary = session.explain_view(
            {"by": "Location", "measure": "LungCancer", "agg": "AVG"}
        )
        assert summary.dimensions == ("Location",)
        assert all(p.error is None for p in summary.pairs)
        kinds = [p.kind for p in summary.pairs]
        assert kinds == sorted(kinds)  # pairwise block, then vs_rest
        # The vs-rest tail repeats pairwise queries → warm workspace cache.
        assert session.cache_info()["workspace_hits"] > 0
        payload = summary.to_dict()
        assert ViewSummary.from_dict(payload).to_dict() == payload

    def test_twelve_group_view_matches_individual_explains(
        self, view_model, view_table
    ):
        view = group_by(view_table, ("Facet", "Band"), "M")
        assert len(view.groups) == 12

        session = ExplainSession(view_model, view_table)
        summary = session.explain_view(view, orientation="vs_rest")
        assert len(summary.pairs) == 12
        assert all(p.error is None for p in summary.pairs)

        # Canonical pair order == enumeration order, so specs align by index.
        specs = enumerate_view_queries(view, orientation="vs_rest")
        fresh = ExplainSession(view_model, view_table)
        for pair, spec in zip(summary.pairs, specs):
            assert pair.report == report_to_dict(fresh.explain(spec.query))

    def test_sharded_explain_view_matches_serial(self, view_model, view_table):
        view = group_by(view_table, ("Facet", "Band"), "M")
        serial = ExplainSession(view_model, view_table).explain_view(
            view, orientation="vs_rest"
        )
        sharded = ExplainSession(view_model, view_table).explain_view(
            view, orientation="vs_rest", workers=2
        )
        assert sharded.to_dict() == serial.to_dict()

    def test_poison_pair_isolated_at_session_level(
        self, view_model, view_table, monkeypatch
    ):
        session = ExplainSession(view_model, view_table)
        view = group_by(view_table, ("Facet", "Band"), "M")
        specs = enumerate_view_queries(view, orientation="vs_rest")
        poison = specs[0].query
        real_explain = ExplainSession.explain

        def explode(self, query, **kwargs):
            if query == poison:
                raise RuntimeError("injected fault")
            return real_explain(self, query, **kwargs)

        monkeypatch.setattr(ExplainSession, "explain", explode)
        summary = session.explain_view(view, orientation="vs_rest")
        failed = summary.failed_pairs
        assert len(failed) >= 1
        assert all("RuntimeError: injected fault" == p.error for p in failed)
        assert any(p.error is None and p.report for p in summary.pairs)

    def test_on_error_raise_propagates(self, model, table, monkeypatch):
        session = ExplainSession(model, table)

        def explode(self, query, **kwargs):
            raise RuntimeError("injected fault")

        monkeypatch.setattr(ExplainSession, "explain", explode)
        with pytest.raises(RuntimeError, match="injected fault"):
            session.explain_view(
                {"by": "Location", "measure": "LungCancer"}, on_error="raise"
            )

    def test_view_without_sibling_pairs_raises(self, model, table):
        session = ExplainSession(model, table)
        lone = GroupByResult(
            ("Location",),
            "LungCancer",
            Aggregate.AVG,
            (GroupedValue(("A",), 1.0, 10),),
        )
        with pytest.raises(QueryError, match="no sibling group pairs"):
            session.explain_view(lone)
