"""Column-store tests: round-trip, zero-copy pickling, chunked-kernel parity.

The contract under test is the PR-6 tentpole: a store-backed
:class:`~repro.data.table.Table` / :class:`~repro.independence.engine.
EncodedDataset` must be *observably identical* to its in-RAM twin — same
skeleton, same sepsets, same explanation reports, byte-identical
contingency cubes — while crossing a process boundary as O(manifest-path)
bytes instead of O(n_rows) code arrays.
"""

import pickle

import numpy as np
import pytest

from repro.core.model import fit_model
from repro.core.session import ExplainSession
from repro.data import ColumnStore, QueryWorkspace, Role, Subspace, Table, WhyQuery
from repro.data.store import MANIFEST_NAME
from repro.discovery.fci import fci_from_table
from repro.errors import StoreError
from repro.independence import BatchCITester
from repro.independence.engine import EncodedDataset

from test_parallel import report_signature

SEED = 7


def make_table(n: int = 6000, seed: int = SEED) -> Table:
    """Binary chain A -> B -> C with an extra noise dimension and a measure
    driven by C — enough structure for discovery and explanation parity."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, n)
    b = np.where(rng.random(n) < 0.85, a, 1 - a)
    c = np.where(rng.random(n) < 0.85, b, 1 - b)
    noise = rng.integers(0, 3, n)
    measure = c * 2.0 + rng.normal(0.0, 0.25, n)
    return Table.from_columns(
        {
            "A": ["a" if v else "b" for v in a],
            "B": ["y" if v else "n" for v in b],
            "C": ["hi" if v else "lo" for v in c],
            "N": [str(v) for v in noise],
            "M": measure.tolist(),
        }
    )


@pytest.fixture(scope="module")
def ram_table() -> Table:
    return make_table()


@pytest.fixture(scope="module")
def store(ram_table, tmp_path_factory) -> ColumnStore:
    return ram_table.to_store(tmp_path_factory.mktemp("cs") / "store")


@pytest.fixture(scope="module")
def mapped_table(store) -> Table:
    return Table.from_store(store.path)


class TestStoreRoundTrip:
    def test_table_round_trips(self, ram_table, mapped_table):
        assert mapped_table.n_rows == ram_table.n_rows
        assert mapped_table.schema == ram_table.schema
        for name in ram_table.dimensions:
            np.testing.assert_array_equal(
                mapped_table.codes(name), ram_table.codes(name)
            )
            assert mapped_table.categories(name) == ram_table.categories(name)
        for name in ram_table.measures:
            np.testing.assert_array_equal(
                mapped_table.measure_values(name), ram_table.measure_values(name)
            )

    def test_mapped_columns_are_memmaps(self, mapped_table, store):
        for name in mapped_table.schema.columns:
            col = mapped_table.column(name)
            assert col.is_mapped
        assert mapped_table.store.path == store.path

    def test_copy_mode_loads_plain_arrays(self, store):
        table = Table.from_store(store.path, mmap=False)
        assert not any(table.column(n).is_mapped for n in table.schema.columns)

    def test_store_introspection(self, store, ram_table):
        assert store.n_rows == ram_table.n_rows
        assert store.columns == ram_table.schema.columns
        assert set(store.dimensions) == set(ram_table.dimensions)
        assert set(store.measures) == set(ram_table.measures)
        assert store.role("A") is Role.DIMENSION
        assert store.role("M") is Role.MEASURE
        assert store.categories("A") == ram_table.categories("A")

    def test_write_refuses_existing_store(self, ram_table, store):
        with pytest.raises(StoreError, match="already holds"):
            ram_table.to_store(store.path)

    def test_force_replaces_existing_store(self, ram_table, tmp_path):
        target = tmp_path / "s"
        ram_table.to_store(target)
        smaller = make_table(n=100, seed=SEED + 1)
        replaced = smaller.to_store(target, force=True)
        assert replaced.n_rows == 100
        # No leftover column files from the larger original store.
        assert len(sorted(target.glob("col_*.npy"))) == len(replaced.columns)
        assert Table.from_store(target).n_rows == 100

    def test_write_refuses_leftover_column_files(self, ram_table, tmp_path):
        target = tmp_path / "crashed"
        target.mkdir()
        (target / "col_00000.npy").write_bytes(b"half-written")
        with pytest.raises(StoreError, match="leftover column file"):
            ram_table.to_store(target)
        ram_table.to_store(target, force=True)
        assert Table.from_store(target).n_rows == ram_table.n_rows

    def test_force_refuses_foreign_directory(self, ram_table, tmp_path):
        target = tmp_path / "precious"
        target.mkdir()
        (target / "thesis.txt").write_text("irreplaceable")
        with pytest.raises(StoreError, match="refusing"):
            ram_table.to_store(target, force=True)
        assert (target / "thesis.txt").read_text() == "irreplaceable"

    def test_unknown_column_raises(self, store):
        with pytest.raises(StoreError, match="no column"):
            store.load_column("nope")
        with pytest.raises(StoreError, match="measure, not a dimension"):
            store.categories("M")


class TestManifestValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StoreError, match="no manifest.json"):
            ColumnStore.open(tmp_path)

    def test_bad_json(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StoreError, match="not valid JSON"):
            ColumnStore.open(tmp_path)

    def test_wrong_format(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"format": "parquet"}')
        with pytest.raises(StoreError, match="not a repro-column-store"):
            ColumnStore.open(tmp_path)

    def test_wrong_version(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            '{"format": "repro-column-store", "version": 99}'
        )
        with pytest.raises(StoreError, match="version 99"):
            ColumnStore.open(tmp_path)

    def test_missing_keys(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text(
            '{"format": "repro-column-store", "version": 1}'
        )
        with pytest.raises(StoreError, match="n_rows"):
            ColumnStore.open(tmp_path)

    def test_missing_column_file(self, ram_table, tmp_path):
        store = ram_table.to_store(tmp_path / "s")
        (store.path / "col_00000.npy").unlink()
        with pytest.raises(StoreError, match="missing"):
            ColumnStore.open(store.path).load_column("A")

    def test_row_count_mismatch(self, ram_table, tmp_path):
        store = ram_table.to_store(tmp_path / "s")
        np.save(store.path / "col_00000.npy", np.zeros(3, dtype=np.int64))
        with pytest.raises(StoreError, match="3 rows"):
            ColumnStore.open(store.path).load_column("A")

    def test_unstorable_category_raises(self, tmp_path):
        table = Table.from_columns({"K": [(1, 2), (3, 4)], "M": [0.0, 1.0]})
        with pytest.raises(StoreError, match="not storable"):
            table.to_store(tmp_path / "s")


class TestZeroCopyPickle:
    """The tentpole invariant: crossing a process boundary ships no arrays."""

    def test_store_pickles_as_path(self, store):
        payload = pickle.dumps(store)
        assert len(payload) < 1024
        back = pickle.loads(payload)
        assert back.path == store.path
        assert back.columns == store.columns

    def test_table_pickle_is_manifest_sized(self, mapped_table, ram_table):
        mapped_payload = pickle.dumps(mapped_table)
        ram_payload = pickle.dumps(ram_table)
        # O(manifest path), not O(n_rows): orders of magnitude below in-RAM.
        assert len(mapped_payload) < 1024
        assert len(mapped_payload) * 100 < len(ram_payload)
        back = pickle.loads(mapped_payload)
        assert back.schema == mapped_table.schema
        assert all(back.column(n).is_mapped for n in back.schema.columns)

    def test_attached_dataset_pickle_is_manifest_sized(self, store, ram_table):
        attached = EncodedDataset.attach(store)
        in_ram = EncodedDataset.from_table(ram_table)
        attached_payload = pickle.dumps(attached)
        ram_payload = pickle.dumps(in_ram)
        assert len(attached_payload) < 2048
        assert len(attached_payload) * 100 < len(ram_payload)

    def test_parent_and_worker_share_the_file(self, store):
        """Unpickled codes are memmaps over the *same* column files."""
        attached = EncodedDataset.attach(store)
        clone = pickle.loads(pickle.dumps(attached))
        for name in store.dimensions:
            codes = clone.codes(name)
            assert isinstance(codes, np.memmap)
            assert str(codes.filename) == str(store.path / store._spec(name)["file"])
            np.testing.assert_array_equal(codes, attached.codes(name))

    def test_store_backed_table_round_trips_through_pickle(self, store):
        table = Table.from_store(store.path, chunk_rows=1000)
        back = pickle.loads(pickle.dumps(table))
        assert back.chunk_rows == 1000
        assert back.store.path == store.path
        for name in table.dimensions:
            np.testing.assert_array_equal(back.codes(name), table.codes(name))


class TestChunkedKernelParity:
    """Chunk-wise streaming must be byte-identical to the in-RAM kernels."""

    @pytest.fixture(scope="class", params=[None, 512, 999, 100_000])
    def chunked(self, store, request):
        return EncodedDataset.attach(store, chunk_rows=request.param)

    @pytest.fixture(scope="class")
    def in_ram(self, ram_table):
        return EncodedDataset.from_table(ram_table)

    def test_contingency_parity(self, chunked, in_ram):
        for z in [(), ("N",), ("C", "N")]:
            np.testing.assert_array_equal(
                chunked.contingency("A", "B", z), in_ram.contingency("A", "B", z)
            )

    def test_n_strata_parity(self, chunked, in_ram):
        for z in [(), ("N",), ("B", "N"), ("A", "B", "N")]:
            assert chunked.n_strata(z) == in_ram.n_strata(z)

    def test_observed_cells_parity(self, chunked, in_ram):
        cells_c, counts_c, ns_c = chunked.observed_cells("A", "B", ("N",))
        cells_r, counts_r, ns_r = in_ram.observed_cells("A", "B", ("N",))
        np.testing.assert_array_equal(cells_c, cells_r)
        np.testing.assert_array_equal(counts_c, counts_r)
        assert ns_c == ns_r

    def test_batch_tester_parity(self, chunked, in_ram):
        probes = [("A", "B", ()), ("A", "C", ("B",)), ("A", "C", ("B", "N"))]
        for dense_limit in (None, 1):
            ram_tester = BatchCITester(in_ram, dense_limit=dense_limit or 2**20)
            chk_tester = BatchCITester(chunked, dense_limit=dense_limit or 2**20)
            for probe, ram_v, chk_v in zip(
                probes, ram_tester.test_batch(probes), chk_tester.test_batch(probes)
            ):
                assert ram_v == chk_v, probe

    def test_fork_preserves_chunking(self, chunked):
        fork = chunked.fork()
        assert fork.chunk_rows == chunked.chunk_rows
        np.testing.assert_array_equal(
            fork.contingency("A", "B", ("N",)),
            chunked.contingency("A", "B", ("N",)),
        )


class TestEndToEndParity:
    """Store-backed discovery and serving ≡ in-RAM, report for report."""

    @pytest.fixture(scope="class")
    def chunked_table(self, store):
        return Table.from_store(store.path, chunk_rows=777)

    def test_skeleton_and_sepsets_identical(self, ram_table, chunked_table):
        ram = fci_from_table(ram_table)
        mapped = fci_from_table(chunked_table)
        assert mapped.pag == ram.pag
        assert mapped.sepsets == ram.sepsets

    def test_workspace_row_gather_identical(self, ram_table, chunked_table):
        query = WhyQuery.create(
            Subspace.of(A="a"), Subspace.of(A="b"), measure="M", agg="AVG"
        )
        ram_ws = QueryWorkspace(ram_table, query)
        mapped_ws = QueryWorkspace(chunked_table, query)
        assert ram_ws.delta == mapped_ws.delta
        ram_profile = ram_ws.profile("B")
        mapped_profile = mapped_ws.profile("B")
        np.testing.assert_array_equal(ram_profile.count1, mapped_profile.count1)
        np.testing.assert_array_equal(ram_profile.sum1, mapped_profile.sum1)

    def test_explain_batch_reports_identical(self, ram_table, chunked_table):
        queries = [
            WhyQuery.create(
                Subspace.of(A="a"), Subspace.of(A="b"), measure="M", agg=agg
            )
            for agg in ("AVG", "SUM", "COUNT")
        ]
        ram_model = fit_model(ram_table)
        mapped_model = fit_model(chunked_table)
        assert ram_model.to_dict() == mapped_model.to_dict()
        ram_reports = ExplainSession(ram_model, ram_table).explain_batch(queries)
        mapped_reports = ExplainSession(mapped_model, chunked_table).explain_batch(
            queries
        )
        assert [report_signature(r) for r in mapped_reports] == [
            report_signature(r) for r in ram_reports
        ]

    def test_process_workers_over_store(self, ram_table, chunked_table):
        """Store-backed serving through real process workers stays identical."""
        query = WhyQuery.create(
            Subspace.of(A="a"), Subspace.of(A="b"), measure="M", agg="AVG"
        )
        model = fit_model(chunked_table)
        session = ExplainSession(model, chunked_table)
        serial = session.explain_batch([query] * 4)
        sharded = session.explain_batch([query] * 4, workers=2, executor=None)
        assert [report_signature(r) for r in sharded] == [
            report_signature(r) for r in serial
        ]
