"""Tests for the simulated user-study harness (Tables 5 and 7 protocols)."""

import numpy as np
import pytest

from repro.core import CausalRole, Explanation, ExplanationType
from repro.data import Predicate
from repro.datasets import web_truth_graph
from repro.userstudy import (
    ClaimVerdict,
    claim_assessment,
    explanation_assessment,
    recruit_experts,
)


def make_explanation(attribute, kind=ExplanationType.CAUSAL, responsibility=0.8):
    return Explanation(
        type=kind,
        predicate=Predicate.of(attribute, ["1"]),
        responsibility=responsibility,
        attribute=attribute,
        role=CausalRole.PARENT,
    )


@pytest.fixture()
def experts():
    return recruit_experts(web_truth_graph(), n_experts=6, seed=0)


class TestSimulatedExpert:
    def test_true_causal_explanation_scores_high(self, experts):
        e = make_explanation("SpamContent")
        scores = [x.score_explanation(e, "IsBlocked") for x in experts]
        assert np.mean(scores) >= 3.0

    def test_false_causal_claim_scores_low(self, experts):
        e = make_explanation("Behaviour00")  # independent noise column
        scores = [x.score_explanation(e, "IsBlocked") for x in experts]
        assert np.mean(scores) <= 3.0

    def test_honest_non_causal_scores_well(self, experts):
        e = make_explanation("Behaviour00", kind=ExplanationType.NON_CAUSAL)
        scores = [x.score_explanation(e, "IsBlocked") for x in experts]
        assert np.mean(scores) >= 3.0

    def test_scores_clipped_to_range(self, experts):
        e = make_explanation("SpamContent", responsibility=1.0)
        for expert in experts:
            assert 0 <= expert.score_explanation(e, "IsBlocked") <= 5

    def test_claim_assessment_mostly_reasonable_on_truth(self, experts):
        verdicts = [x.assess_claim("SpamContent", "IsBlocked") for x in experts]
        n_reasonable = sum(v is ClaimVerdict.REASONABLE for v in verdicts)
        assert n_reasonable >= 4

    def test_false_claims_rejected(self, experts):
        verdicts = [x.assess_claim("Behaviour00", "IsBlocked") for x in experts]
        n_not_reasonable = sum(v is ClaimVerdict.NOT_REASONABLE for v in verdicts)
        assert n_not_reasonable >= 3


class TestExplanationAssessment:
    def test_table5_shape(self, experts):
        items = [
            (make_explanation("SpamContent"), "IsBlocked"),
            (make_explanation("ConfigChanges"), "IsBlocked"),
            (make_explanation("MassMessaging"), "IsBlocked"),
            (make_explanation("AbuseReports"), "IsBlocked"),
        ]
        table5 = explanation_assessment(items, experts)
        assert table5.scores.shape == (6, 4)
        assert table5.means.shape == (4,)
        assert table5.positive_fraction > 0.7

    def test_to_rows_includes_mean_and_std(self, experts):
        items = [(make_explanation("SpamContent"), "IsBlocked")]
        rows = explanation_assessment(items, experts).to_rows()
        assert rows[-2][0] == "mean"
        assert rows[-1][0] == "std"
        assert len(rows) == 1 + 6 + 2  # header + experts + mean + std


class TestClaimAssessment:
    def test_table7_shape_and_majority(self, experts):
        truth = web_truth_graph()
        claims = [(p, "IsBlocked") for p in truth.parents("IsBlocked")]
        claims += [("NewAccount", "IsBlocked"), ("ScriptedClient", "IsBlocked")]
        table7 = claim_assessment(claims, experts)
        assert table7.total_responses == 6 * len(claims)
        # The paper: 83.3% reasonable, 6.3% not reasonable on true claims.
        assert table7.reasonable_fraction > 0.6
        assert table7.not_reasonable_fraction < 0.3

    def test_to_rows(self, experts):
        table7 = claim_assessment([("SpamContent", "IsBlocked")], experts)
        rows = table7.to_rows()
        assert rows[1][0] == "# Reasonable"
        assert len(rows) == 4
